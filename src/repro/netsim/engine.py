"""The discrete-event network engine.

:class:`Network` owns the topology graph, the virtual clock, the event
queue and the forwarding logic.  Forwarding implements:

* per-hop TTL decrement with ICMP Time-Exceeded generation (suppressed
  on *anonymized* routers, which therefore traceroute as ``*``);
* hash-based ECMP: where several equal-cost next hops exist the choice
  is a deterministic hash of the destination address, so different
  destinations take different paths through an ISP — the property the
  paper's coverage experiments rely on (section 4.2.2);
* middlebox hooks: wiretaps receive a copy of every transiting packet
  *before* TTL processing, inline middleboxes are consulted *after* the
  TTL decrement but *before* the expiry check, so a censored request
  whose TTL dies at (or beyond) the middlebox hop still elicits a
  censorship notification instead of an ICMP error — exactly the
  behaviour reported in section 4.2.1.
"""

from __future__ import annotations

import itertools
import os
import zlib
from collections import Counter
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, no import cycle
    from ..obs.trace import TraceBus

import networkx as nx

from .devices import Host, Node, Router
from .errors import RoutingError, SimulationError, UnknownNodeError
from .faults import (
    DEFAULT_HARDENING,
    DUPLICATE_GAP,
    NO_HARDENING,
    FaultInjector,
    FaultPlan,
    HardeningPolicy,
)
from .packets import Packet, PacketPool, make_time_exceeded
from .scheduler import make_scheduler
from ..obs.trace import flow_id as _flow_id

#: Default one-way link delay in (virtual) seconds.
DEFAULT_LINK_DELAY = 0.005

#: Newest drop records kept in :attr:`Network.drops` (the list exists
#: for tests and forensics; statistics come from the incremental
#: counter, which is never truncated).  Long fuzz/campaign runs with
#: faults enabled would otherwise grow the list without bound.
DROPS_KEPT_MAX = 100_000

#: Size guards for the routing fast-path caches.  The key spaces are
#: bounded by the address plan of a single world, so these limits only
#: matter for pathological synthetic workloads; hitting one clears the
#: cache (correctness is unaffected — entries are pure memoization).
ECMP_HASH_CACHE_MAX = 1 << 20
PATH_CACHE_MAX = 1 << 18
FWD_PLAN_CACHE_MAX = 1 << 18

#: Compiled forwarding-plan kinds (see :meth:`Network._plan_for`).
_PLAN_LINK = 0
_PLAN_LOCAL = 1
_PLAN_NO_ROUTE = 2
_PLAN_EXPRESS = 3

#: The no-route plan carries no target; shared across all keys.
_NO_ROUTE_PLAN = (_PLAN_NO_ROUTE, None, 0.0)

#: Inline middlebox verdicts.
FORWARD = "forward"
DROP = "drop"
CONSUMED = "consumed"


def _ecmp_hash(src_ip: Optional[str], dst_ip: str, node_name: str) -> int:
    """Deterministic, unsalted hash used for ECMP next-hop selection.

    The hash key is the *unordered* address pair, so both directions of
    a flow hash identically and take mirrored paths — without this,
    middleboxes would see only one side of the handshakes they must
    observe to build flow state.  When no source is known (bare path
    queries) the destination alone is used.
    """
    if src_ip is None:
        key = f"{dst_ip}|{node_name}"
    else:
        lo, hi = sorted((src_ip, dst_ip))
        key = f"{lo}|{hi}|{node_name}"
    return zlib.crc32(key.encode("ascii"))


class Network:
    """The simulated internetwork: topology, clock, events, forwarding."""

    def __init__(self, *, scheduler: Optional[str] = None) -> None:
        self.graph = nx.Graph()
        self.nodes: Dict[str, Node] = {}
        self.ip_owner: Dict[str, Node] = {}
        self.now: float = 0.0
        self.drops: List[Tuple[float, str, Packet]] = []
        #: Drops not retained in :attr:`drops` once the list is full.
        self.drops_truncated = 0
        self._drop_counter: Counter = Counter()
        #: Event scheduler: the slotted calendar queue by default, the
        #: seed binary heap as the verbatim escape hatch.  Selected per
        #: instance (``Network(scheduler="heap")``) or process-wide via
        #: ``REPRO_SCHEDULER=heap`` — both orderings are byte-identical
        #: (property-tested), so the hatch exists for differential
        #: debugging, not correctness.
        kind = scheduler or os.environ.get("REPRO_SCHEDULER") or "slots"
        self._sched = make_scheduler(kind)
        self._push = self._sched.push
        self._seq = itertools.count()
        self._dist_cache: Dict[str, Dict[str, float]] = {}
        self._events_processed = 0
        #: Monotonic counter bumped on every topology/addressing change;
        #: all derived routing state (distances, FIB, paths) is valid
        #: only for the generation it was computed under.
        self._generation = 0
        #: dst node name -> {node name -> sorted ECMP candidate names}.
        self._fib: Dict[str, Dict[str, List[str]]] = {}
        #: (src_ip, dst_ip, node name) -> crc32 — the flow-key memo for
        #: :func:`_ecmp_hash` (topology-independent, never invalidated).
        self._ecmp_hash_cache: Dict[Tuple[Optional[str], str, str], int] = {}
        #: (node name, dst_ip, src_ip) -> tuple of path Nodes.
        self._path_cache: Dict[Tuple[str, str, Optional[str]],
                               Tuple[Node, ...]] = {}
        #: (node name, dst_ip, src_ip) -> compiled forwarding step —
        #: the delivery plan consulted by :meth:`transmit` and
        #: :meth:`_route_through` instead of re-deriving next hop and
        #: link delay per packet.  Built lazily from :meth:`next_hop`
        #: (so equivalence is by construction), invalidated with the
        #: other routing caches.
        self._fwd_plans: Dict[Tuple[str, str, Optional[str]], tuple] = {}
        #: Escape hatch for equivalence tests and benchmarks: when
        #: False, :meth:`next_hop`/:meth:`path_to` recompute from the
        #: graph every call (the seed implementation, byte for byte).
        self.routing_cache_enabled = True
        #: Escape hatch for precompiled delivery plans at *both*
        #: layers: the engine's per-(node, dst, src) forwarding plans
        #: (including transit-hop fusion) and the express-probe plans
        #: compiled by ``repro.core.measure.fastprobe``.  When False,
        #: packets forward hop by hop over the cached FIB and express
        #: probes re-walk the middlebox chain per call.
        self.delivery_plans_enabled = True
        #: Free-list reuse of TCP packet/segment pairs.  Toggled by
        #: ``packet_pooling_enabled`` (or ``REPRO_PACKET_POOLING=0``);
        #: pooling is invisible to results — recycled packets are fully
        #: reset and the ip_id stream advances identically either way.
        self.packet_pool = PacketPool()
        pooling = os.environ.get("REPRO_PACKET_POOLING", "1")
        self.packet_pooling_enabled = \
            pooling.lower() not in ("0", "false", "no", "off")
        #: Installed by :meth:`install_faults`; ``None`` means a perfect
        #: network — the seed repo's behaviour, byte for byte.
        self.faults: Optional[FaultInjector] = None
        #: Client resilience knobs consulted by dns/http/tcp layers.
        #: Stays at seed-repo single-shot behaviour until faults are
        #: installed.
        self.hardening: HardeningPolicy = NO_HARDENING
        #: Cooperative deadline hook: when set, called (no args) after
        #: every processed event.  The campaign watchdog uses it to
        #: convert runaway units into recorded timeouts; exceptions it
        #: raises propagate out of :meth:`run`.
        self.step_hook: Optional[Callable[[], None]] = None
        #: Structured trace bus (``repro.obs.trace``); ``None`` — the
        #: default — costs one attribute test per emit site, an
        #: attached-but-unsubscribed bus one extra ``active`` test.
        self.trace: Optional["TraceBus"] = None
        #: Always-on forwarding-cache statistics.  Plain integer
        #: attributes (never dicts) so the hot path pays a single
        #: in-place add; ``repro.obs.metrics`` scrapes them into the
        #: catalogued metric names.
        self.fib_hits = 0
        self.fib_builds = 0
        self.flowhash_hits = 0
        self.flowhash_misses = 0
        self.path_cache_hits = 0
        self.path_cache_misses = 0
        self.fwd_plan_hits = 0
        self.fwd_plan_builds = 0
        #: Express delivery-plan counters, maintained by
        #: ``repro.core.measure.fastprobe`` (kept here so one scrape
        #: covers the whole forwarding fast path).
        self.express_plan_hits = 0
        self.express_plan_builds = 0
        #: Hardened-client retry accounting: ``layer -> count``
        #: (clients bump it; same pattern as the drop counter).
        self.client_retries: Counter = Counter()

    def install_faults(self, plan: FaultPlan,
                       hardening: Optional[HardeningPolicy] = None,
                       ) -> FaultInjector:
        """Activate a fault plan (and, by default, client hardening).

        Passing ``hardening=None`` selects :data:`~.faults.DEFAULT_HARDENING`
        — injecting faults without hardening the clients is almost never
        what an experiment wants, but tests can pass
        :data:`~.faults.NO_HARDENING` explicitly to demonstrate the
        failure modes.
        """
        self.faults = FaultInjector(plan)
        self.hardening = DEFAULT_HARDENING if hardening is None else hardening
        return self.faults

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    @property
    def topology_generation(self) -> int:
        """Current topology/addressing generation (cache epoch).

        Consumers caching anything derived from the topology — paths,
        forwarding tables, middlebox placements — key it on this value
        and recompute when it moves.
        """
        return self._generation

    def invalidate_routing_caches(self) -> None:
        """Advance the generation and drop all derived routing state."""
        self._generation += 1
        self._dist_cache.clear()
        self._fib.clear()
        self._path_cache.clear()
        self._fwd_plans.clear()

    def add_node(self, node: Node) -> Node:
        """Attach a host or router to the network."""
        if node.name in self.nodes:
            raise SimulationError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        node.network = self
        self.graph.add_node(node.name)
        for ip in node.ips:
            self.register_ip(ip, node)
        self.invalidate_routing_caches()
        return node

    def add_host(self, name: str, ip: str, asn: int = 0) -> Host:
        """Create, address and attach a host in one call."""
        host = Host(name, asn)
        self.add_node(host)
        host.add_ip(ip)
        return host

    def add_router(self, name: str, ip: str, asn: int = 0,
                   *, anonymized: bool = False) -> Router:
        """Create, address and attach a router in one call."""
        router = Router(name, asn, anonymized=anonymized)
        self.add_node(router)
        router.add_ip(ip)
        return router

    def register_ip(self, ip: str, node: Node) -> None:
        """Record that *node* owns interface address *ip*."""
        existing = self.ip_owner.get(ip)
        if existing is not None and existing is not node:
            raise SimulationError(
                f"IP {ip} already owned by {existing.name}, "
                f"cannot assign to {node.name}"
            )
        if existing is None:
            # A new destination address invalidates path caches (the
            # FIB itself is keyed per owner *node* and unaffected).
            self._generation += 1
            self._path_cache.clear()
            self._fwd_plans.clear()
        self.ip_owner[ip] = node

    def link(self, a: str, b: str, delay: float = DEFAULT_LINK_DELAY) -> None:
        """Connect two nodes with a bidirectional link of given delay."""
        for name in (a, b):
            if name not in self.nodes:
                raise UnknownNodeError(f"unknown node: {name}")
        self.graph.add_edge(a, b, delay=delay)
        self.invalidate_routing_caches()

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise UnknownNodeError(f"unknown node: {name}") from None

    def owner_of(self, ip: str) -> Optional[Node]:
        """Return the node owning interface address *ip*, if any."""
        return self.ip_owner.get(ip)

    # ------------------------------------------------------------------
    # Event queue
    # ------------------------------------------------------------------

    @property
    def scheduler(self) -> str:
        """Active scheduler kind: ``"slots"`` or ``"heap"``."""
        return self._sched.kind

    @scheduler.setter
    def scheduler(self, kind: str) -> None:
        self.set_scheduler(kind)

    def set_scheduler(self, kind: str) -> None:
        """Switch scheduler implementations, migrating pending events.

        Entry objects migrate as-is, so times, sequence numbers and any
        outstanding cancellation handles all survive the switch.
        """
        if kind == self._sched.kind:
            return
        replacement = make_scheduler(kind)
        for entry in self._sched.pop_all():
            replacement.push_entry(entry)
        self._sched = replacement
        self._push = replacement.push

    def call_later(self, delay: float, fn: Callable, *args) -> list:
        """Schedule ``fn(*args)`` at ``now + delay``.

        Returns an opaque handle accepted by :meth:`cancel_scheduled`.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._push(self.now + delay, next(self._seq), fn, args)

    def call_at(self, when: float, fn: Callable, *args) -> list:
        """Schedule ``fn(*args)`` at absolute virtual time *when*."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        return self._push(when, next(self._seq), fn, args)

    def cancel_scheduled(self, handle: list) -> bool:
        """Cancel a pending event by its ``call_later``/``call_at``
        handle.  Returns False if it already ran or was cancelled.
        Cancelled events are skipped without touching the event budget.
        """
        return self._sched.cancel(handle)

    def run(self, until: Optional[float] = None, max_events: int = 20_000_000) -> int:
        """Process events until the queue drains or *until* is reached.

        Returns the number of events processed by this call.  At most
        *max_events* events execute: the budget check runs *before*
        each event — per event, not per slot batch — so a blown budget
        raises with exactly *max_events* executed, never one more.
        """
        sched = self._sched
        try:
            processed = sched.drain(self, until, max_events)
        finally:
            # ``drained`` is valid even when the drain raised (budget,
            # callback error, step-hook deadline), so partial progress
            # is always accounted.
            self._events_processed += sched.drained
        if until is not None and self.now < until:
            self.now = until
        return processed

    def run_until_idle(self, max_events: int = 20_000_000) -> int:
        """Run until no events remain."""
        return self.run(until=None, max_events=max_events)

    @property
    def pending_events(self) -> int:
        return len(self._sched)

    @property
    def events_processed(self) -> int:
        """Total events executed over this network's lifetime."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Routing (hash-based ECMP over shortest paths)
    # ------------------------------------------------------------------

    def _distances_to(self, dst_name: str) -> Dict[str, float]:
        """Distance from every node to *dst_name* (cached per target)."""
        cached = self._dist_cache.get(dst_name)
        if cached is None:
            cached = nx.single_source_dijkstra_path_length(
                self.graph, dst_name, weight="delay"
            )
            self._dist_cache[dst_name] = cached
        return cached

    def _ecmp_candidates(self, node_name: str, dist: Dict[str, float]
                         ) -> List[str]:
        """Sorted equal-cost next-hop names from *node_name* (seed
        algorithm, shared by the FIB builder and the uncached path)."""
        best_cost = None
        candidates: List[str] = []
        for neighbor in self.graph.neighbors(node_name):
            neighbor_dist = dist.get(neighbor)
            if neighbor_dist is None:
                continue
            cost = self.graph.edges[node_name, neighbor]["delay"] + neighbor_dist
            if best_cost is None or cost < best_cost - 1e-12:
                best_cost = cost
                candidates = [neighbor]
            elif abs(cost - best_cost) <= 1e-12:
                candidates.append(neighbor)
        candidates.sort()
        return candidates

    def _fib_for(self, dst_name: str) -> Dict[str, List[str]]:
        """The forwarding table toward *dst_name*, built on first use.

        One pass over every (reachable node, incident edge) pair — the
        same asymptotic cost as the Dijkstra sweep that feeds it — then
        every subsequent ``next_hop`` toward this destination is a pair
        of dict lookups.  Invalidated wholesale by
        :meth:`invalidate_routing_caches`.
        """
        table = self._fib.get(dst_name)
        if table is None:
            self.fib_builds += 1
            dist = self._distances_to(dst_name)
            table = {
                name: self._ecmp_candidates(name, dist)
                for name in dist
            }
            self._fib[dst_name] = table
        else:
            self.fib_hits += 1
        return table

    def _flow_hash(self, src_ip: Optional[str], dst_ip: str,
                   node_name: str) -> int:
        """Memoized :func:`_ecmp_hash` for one flow key at one node."""
        cache = self._ecmp_hash_cache
        key = (src_ip, dst_ip, node_name)
        digest = cache.get(key)
        if digest is None:
            self.flowhash_misses += 1
            if len(cache) >= ECMP_HASH_CACHE_MAX:
                cache.clear()
            digest = _ecmp_hash(src_ip, dst_ip, node_name)
            cache[key] = digest
        else:
            self.flowhash_hits += 1
        return digest

    def next_hop(self, from_node: Node, dst_ip: str,
                 src_ip: Optional[str] = None) -> Optional[Node]:
        """ECMP next hop from *from_node* toward *dst_ip*, or None."""
        owner = self.ip_owner.get(dst_ip)
        if owner is None or owner is from_node:
            return None
        if not self.routing_cache_enabled:
            return self._next_hop_uncached(from_node, dst_ip, src_ip, owner)
        candidates = self._fib_for(owner.name).get(from_node.name)
        if not candidates:
            return None
        digest = self._flow_hash(src_ip, dst_ip, from_node.name)
        return self.nodes[candidates[digest % len(candidates)]]

    def _next_hop_uncached(self, from_node: Node, dst_ip: str,
                           src_ip: Optional[str], owner: Node
                           ) -> Optional[Node]:
        """The seed implementation: recompute candidates every call.

        Kept as the reference the FIB fast path is property-tested
        against (``routing_cache_enabled = False`` routes through it).
        """
        dist = self._distances_to(owner.name)
        if dist.get(from_node.name) is None:
            return None
        candidates = self._ecmp_candidates(from_node.name, dist)
        if not candidates:
            return None
        choice = _ecmp_hash(src_ip, dst_ip, from_node.name) % len(candidates)
        return self.nodes[candidates[choice]]

    def path_to(self, from_node: Node, dst_ip: str, max_hops: int = 64,
                src_ip: Optional[str] = None) -> List[Node]:
        """The full ECMP path a packet for *dst_ip* takes from *from_node*.

        ``src_ip`` defaults to the node's own primary address so planned
        paths match the paths that node's packets actually take.  Used
        by the express probing layer; equivalence with packet-by-packet
        forwarding is covered by property tests.

        Successful walks are cached per ``(node, dst_ip, src_ip)`` until
        the topology generation moves; callers get a fresh list every
        time, so mutating the result never corrupts the cache.
        """
        if src_ip is None and from_node.ips:
            src_ip = from_node.ip
        if self.routing_cache_enabled:
            key = (from_node.name, dst_ip, src_ip)
            cached = self._path_cache.get(key)
            if cached is not None:
                self.path_cache_hits += 1
                return list(cached)
            self.path_cache_misses += 1
        owner = self.ip_owner.get(dst_ip)
        if owner is None:
            raise RoutingError(f"no node owns {dst_ip}")
        path = [from_node]
        current = from_node
        for _ in range(max_hops):
            if current is owner:
                if self.routing_cache_enabled:
                    if len(self._path_cache) >= PATH_CACHE_MAX:
                        self._path_cache.clear()
                    self._path_cache[key] = tuple(path)
                return path
            nxt = self.next_hop(current, dst_ip, src_ip)
            if nxt is None:
                raise RoutingError(
                    f"no route from {from_node.name} to {dst_ip} "
                    f"(stuck at {current.name})"
                )
            path.append(nxt)
            current = nxt
        raise RoutingError(f"path to {dst_ip} exceeds {max_hops} hops")

    def hop_count(self, from_node: Node, dst_ip: str) -> int:
        """Number of forwarding hops from *from_node* to *dst_ip*."""
        return len(self.path_to(from_node, dst_ip)) - 1

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def _plan_for(self, from_node: Node, dst_ip: str,
                  src_ip: Optional[str]) -> tuple:
        """The compiled delivery plan from *from_node* for this flow.

        Built once per (node, dst, src) from the same :meth:`next_hop`
        the per-packet path uses, then served as two dict lookups — the
        delivery-plan analogue of PR 4's FIB, one level higher.  Shapes:

        * ``(_PLAN_LINK, next_node, delay)`` — single forwarding step.
        * ``(_PLAN_EXPRESS, final_node, delays, n_transit, next_node,
          delay)`` — a fused chain of pure-transit routers (no taps, no
          inline middlebox): the packet can jump straight to
          *final_node* (the owner host or the first router that
          actually processes traffic).  ``delays`` are the per-link
          delays in traversal order — accumulated left-to-right at use
          time they reproduce the per-hop arrival float exactly, since
          the seed advances ``now`` to each intermediate event's time
          before adding the next delay.  The trailing ``next_node,
          delay`` pair is the single-step fallback used when something
          *can* observe intermediate hops (faults, an active trace, or
          a TTL that would expire mid-chain).
        * ``(_PLAN_LOCAL, owner, 0.0)`` — loopback delivery.
        * ``_NO_ROUTE_PLAN``.

        Plans are retired by :meth:`invalidate_routing_caches`, which
        middlebox attachment also triggers (taps and inline boxes end a
        transit chain, so their placement is part of the plan).
        """
        plans = self._fwd_plans
        key = (from_node.name, dst_ip, src_ip)
        plan = plans.get(key)
        if plan is not None:
            self.fwd_plan_hits += 1
            return plan
        self.fwd_plan_builds += 1
        owner = self.ip_owner.get(dst_ip)
        if owner is None:
            plan = _NO_ROUTE_PLAN
        elif owner is from_node:
            plan = (_PLAN_LOCAL, owner, 0.0)
        else:
            nxt = self.next_hop(from_node, dst_ip, src_ip)
            if nxt is None:
                plan = _NO_ROUTE_PLAN
            else:
                edges = self.graph.edges
                first_delay = edges[from_node.name, nxt.name]["delay"]
                delays = [first_delay]
                node = nxt
                # Extend through pure-transit routers.  Stops at the
                # owner, any host, a router with taps or an inline box,
                # or a routing dead end (the final node then handles
                # its own processing/drop exactly as per-hop would).
                while (type(node) is Router and node is not owner
                       and not node.taps and node.inline_middlebox is None
                       and len(delays) < 64):
                    following = self.next_hop(node, dst_ip, src_ip)
                    if following is None:
                        break
                    delays.append(edges[node.name, following.name]["delay"])
                    node = following
                if len(delays) == 1:
                    plan = (_PLAN_LINK, nxt, first_delay)
                else:
                    plan = (_PLAN_EXPRESS, node, tuple(delays),
                            len(delays) - 1, nxt, first_delay)
        if len(plans) >= FWD_PLAN_CACHE_MAX:
            plans.clear()
        plans[key] = plan
        return plan

    def transmit(self, from_node: Node, packet: Packet) -> None:
        """Emit *packet* from *from_node* toward its destination."""
        if self.routing_cache_enabled and self.delivery_plans_enabled:
            plan = self._plan_for(from_node, packet.dst, packet.src)
            kind = plan[0]
            if kind == _PLAN_EXPRESS:
                trace = self.trace
                if (self.faults is None and packet.ttl > plan[3]
                        and (trace is None or not trace.active)):
                    when = self.now
                    for delay in plan[2]:
                        when += delay
                    packet.ttl -= plan[3]
                    # The skipped transit arrivals still count as
                    # steps, so ``events_processed`` — and the
                    # journal's per-unit "steps" — matches the per-hop
                    # path (e.g. the same unit run under --trace).
                    self._events_processed += plan[3]
                    hook = self.step_hook
                    if hook is not None:
                        for _ in range(plan[3]):
                            hook()
                    self._push(when, next(self._seq),
                               self._arrive, (plan[1], packet))
                else:
                    # Per-hop fallback: take one step; downstream
                    # routers re-decide at their own plan.
                    self._forward_link(from_node, plan[4], packet, plan[5])
                return
            if kind == _PLAN_LINK:
                if self.faults is None:
                    self._push(self.now + plan[2], next(self._seq),
                               self._arrive, (plan[1], packet))
                else:
                    self._forward_link(from_node, plan[1], packet, plan[2])
                return
            if kind == _PLAN_LOCAL:
                self.call_later(0.0, self._deliver_local, plan[1], packet)
                return
            self._drop("no-route", packet)
            return
        owner = self.ip_owner.get(packet.dst)
        if owner is None:
            self._drop("no-route", packet)
            return
        if owner is from_node:
            # Loopback delivery.
            self.call_later(0.0, self._deliver_local, owner, packet)
            return
        nxt = self.next_hop(from_node, packet.dst, packet.src)
        if nxt is None:
            self._drop("no-route", packet)
            return
        self._forward_link(from_node, nxt, packet)

    def _drop(self, reason: str, packet: Packet) -> None:
        """Record a dropped packet (list for tests, counter for stats).

        The counter is incremental — :meth:`drop_stats` never re-walks
        the list — and the list itself is capped at
        :data:`DROPS_KEPT_MAX` entries so unbounded fuzz/campaign runs
        under heavy loss cannot grow memory without limit.
        """
        self._drop_counter[reason] += 1
        recyclable = False
        if len(self.drops) < DROPS_KEPT_MAX:
            self.drops.append((self.now, reason, packet))
        else:
            self.drops_truncated += 1
            recyclable = True
        trace = self.trace
        if trace is not None and trace.active:
            trace.emit("drop", self.now, reason=reason,
                       flow=_flow_id(packet), dst=packet.dst)
        if recyclable and self.packet_pooling_enabled:
            # Truncated out of the drops list: nothing retains the
            # packet anymore, so it can go back to the pool.
            self.packet_pool.release(packet)

    def _forward_link(self, from_node: Node, to_node: Node,
                      packet: Packet, delay: Optional[float] = None) -> None:
        """Put *packet* on the link toward *to_node*, faults permitting.

        *delay* may be passed in by a precompiled forwarding plan that
        already knows the edge delay; when ``None`` it is looked up.
        """
        if delay is None:
            delay = self.graph.edges[from_node.name, to_node.name]["delay"]
        if self.faults is not None:
            decision = self.faults.on_link(from_node.name, to_node.name,
                                           self.now)
            if decision.dropped:
                self._drop(
                    f"{decision.drop_reason}:{from_node.name}->{to_node.name}",
                    packet,
                )
                return
            if decision.duplicate:
                self.call_later(
                    delay + decision.extra_delay + DUPLICATE_GAP,
                    self._arrive, to_node, packet.clone(),
                )
            delay += decision.extra_delay
        self.call_later(delay, self._arrive, to_node, packet)

    def _deliver_local(self, node: Node, packet: Packet) -> None:
        if isinstance(node, Host):
            trace = self.trace
            if trace is not None and trace.active:
                trace.emit("deliver", self.now, node=node.name,
                           flow=_flow_id(packet),
                           proto=packet.flow_key()[0])
            if node.deliver(packet, self.now) and self.packet_pooling_enabled:
                self.packet_pool.release(packet)

    def _arrive(self, node: Node, packet: Packet) -> None:
        """A packet arrives at *node*: terminate, or route onward."""
        if isinstance(node, Host):
            if node.owns_ip(packet.dst):
                trace = self.trace
                if trace is not None and trace.active:
                    trace.emit("deliver", self.now, node=node.name,
                               flow=_flow_id(packet),
                               proto=packet.flow_key()[0])
                if (node.deliver(packet, self.now)
                        and self.packet_pooling_enabled):
                    self.packet_pool.release(packet)
            else:
                # Hosts do not forward.
                self._drop("host-not-dst", packet)
            return
        assert isinstance(node, Router)
        self._route_through(node, packet)

    def _route_through(self, router: Router, packet: Packet) -> None:
        # Wiretaps copy traffic before any TTL processing: a probe whose
        # TTL dies at this hop is still observed (and can still trigger
        # censorship), matching the Iterative Network Tracer findings.
        for tap in router.taps:
            tap.on_copy(packet.clone(), self.now, router)

        packet.ttl -= 1

        trace = self.trace
        if trace is not None and trace.active:
            trace.emit("hop", self.now, node=router.name,
                       flow=_flow_id(packet), ttl=packet.ttl, dst=packet.dst)

        # Inline middleboxes inspect after the decrement but before the
        # expiry check: a censored request never produces ICMP errors
        # from hops at or beyond the middlebox.
        inline = router.inline_middlebox
        if inline is not None:
            verdict = inline.process(packet, self.now, router)
            if verdict == DROP:
                self._drop(f"inline-drop:{router.name}", packet)
                return
            if verdict == CONSUMED:
                return
            if verdict != FORWARD:
                raise SimulationError(
                    f"middlebox on {router.name} returned bad verdict {verdict!r}"
                )

        if packet.ttl <= 0:
            if trace is not None and trace.active:
                trace.emit("ttl-exceeded", self.now, node=router.name,
                           flow=_flow_id(packet),
                           icmp=not router.anonymized)
            if not router.anonymized:
                # The ICMP error quotes a *clone* of the offender, so
                # the original can go back to the pool.
                reply = make_time_exceeded(router.ip, packet)
                self.transmit(router, reply)
                if self.packet_pooling_enabled:
                    self.packet_pool.release(packet)
            else:
                self._drop(f"ttl-anon:{router.name}", packet)
            return

        if router.owns_ip(packet.dst):
            # Routers terminate nothing in this model.
            self._drop("router-is-dst", packet)
            return

        if self.routing_cache_enabled and self.delivery_plans_enabled:
            plan = self._plan_for(router, packet.dst, packet.src)
            kind = plan[0]
            if kind == _PLAN_EXPRESS:
                if (self.faults is None and packet.ttl > plan[3]
                        and (trace is None or not trace.active)):
                    when = self.now
                    for delay in plan[2]:
                        when += delay
                    packet.ttl -= plan[3]
                    # Skipped transit arrivals still count as steps
                    # (see :meth:`transmit`).
                    self._events_processed += plan[3]
                    hook = self.step_hook
                    if hook is not None:
                        for _ in range(plan[3]):
                            hook()
                    self._push(when, next(self._seq),
                               self._arrive, (plan[1], packet))
                else:
                    self._forward_link(router, plan[4], packet, plan[5])
                return
            if kind == _PLAN_LINK:
                if self.faults is None:
                    self._push(self.now + plan[2], next(self._seq),
                               self._arrive, (plan[1], packet))
                else:
                    self._forward_link(router, plan[1], packet, plan[2])
                return
            if kind == _PLAN_LOCAL:
                self.call_later(0.0, self._deliver_local, plan[1], packet)
                return
            self._drop(f"no-route:{router.name}", packet)
            return

        nxt = self.next_hop(router, packet.dst, packet.src)
        if nxt is None:
            self._drop(f"no-route:{router.name}", packet)
            return
        self._forward_link(router, nxt, packet)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def drop_stats(self, *, collapse: bool = True) -> Dict[str, int]:
        """Structured view of all drops so far as ``reason -> count``.

        With ``collapse=True`` the per-hop suffix (``reason:a->b`` or
        ``reason:router``) is stripped so counters aggregate by cause —
        the form the CLI prints in verbose mode.  Served from the
        incremental counter maintained by :meth:`_drop` (it covers
        every drop, including any truncated out of :attr:`drops`), so
        the cost scales with distinct reasons, not total drops.
        """
        if not collapse:
            return dict(self._drop_counter)
        counts: Counter = Counter()
        for reason, count in self._drop_counter.items():
            if ":" in reason:
                reason = reason.split(":", 1)[0]
            counts[reason] += count
        return dict(counts)

    def inject_at(self, router: Router, packet: Packet) -> None:
        """Inject a (usually forged) packet into the network at *router*.

        Wiretap middleboxes use this to race their crafted responses
        against the genuine server reply.
        """
        trace = self.trace
        if trace is not None and trace.active:
            trace.emit("inject", self.now, node=router.name,
                       flow=_flow_id(packet), proto=packet.flow_key()[0],
                       src=packet.src)
        self.transmit(router, packet)

    def middleboxes_on_path(self, from_node: Node, dst_ip: str,
                            src_ip: Optional[str] = None) -> List[tuple]:
        """All middleboxes a packet to *dst_ip* would traverse.

        Returns ``(hop_index, router, middlebox)`` tuples, hop_index
        counting the first router as 1.  Express probing uses this.
        """
        found = []
        path = self.path_to(from_node, dst_ip, src_ip=src_ip)
        for index, node in enumerate(path[1:-1], start=1):
            if isinstance(node, Router):
                for box in node.middleboxes:
                    found.append((index, node, box))
        return found
