"""Building one ISP's internal network and censorship deployment.

Topology per ISP::

    client -- edge-client --+-- agg_0 ---+
    scan hosts -- edge-p_j --+-- agg_1 ---+-- border -- (core / upstreams)
    resolvers --/            +-- agg_i ---+

Every edge router connects to every aggregation router with equal-cost
links, so the ECMP pair-hash spreads (client, destination) flows across
the aggregation layer — this is what makes "fraction of paths poisoned"
a measurable quantity.  Middleboxes are attached to aggregation routers
per the profile's coverage numbers; their blocklists are per-box
samples of the ISP master list at the profile's consistency density.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..dnssim.resolver import ResolverConfig, ResolverService, mixed_poison
from ..dnssim.zones import GlobalDNS
from ..httpsim.server import OriginServer
from ..middlebox.interceptive import COVERT, InterceptiveMiddlebox, OVERT
from ..middlebox.notification import profile_for
from ..middlebox.triggers import TriggerSpec
from ..middlebox.wiretap import WiretapMiddlebox
from ..netsim.addressing import Prefix, PrefixAllocator
from ..netsim.devices import Host, Router
from ..netsim.engine import Network
from .profiles import (
    DNS_POISON,
    HTTP_IM_COVERT,
    HTTP_IM_OVERT,
    HTTP_WM,
    ISPProfile,
)

#: Link delays inside an ISP.
EDGE_DELAY = 0.002
AGG_DELAY = 0.003
BORDER_DELAY = 0.003


@dataclass
class ISPDeployment:
    """Everything built for one ISP — the ground truth the measurement
    layer tries to rediscover."""

    profile: ISPProfile
    pool: Prefix
    network: Network
    client: Optional[Host] = None
    border: Optional[Router] = None
    edge_client: Optional[Router] = None
    aggregation: List[Router] = field(default_factory=list)
    scan_edges: List[Router] = field(default_factory=list)
    scan_targets: List[str] = field(default_factory=list)
    scan_prefixes: List[Prefix] = field(default_factory=list)
    middleboxes: List[object] = field(default_factory=list)
    peering_boxes: Dict[str, object] = field(default_factory=dict)
    peering_routers: Dict[str, Router] = field(default_factory=dict)
    resolvers: List[Tuple[str, ResolverService]] = field(default_factory=list)
    honest_resolver_ip: Optional[str] = None
    default_resolver_ip: Optional[str] = None
    http_blocklist: FrozenSet[str] = frozenset()
    dns_blocklist: FrozenSet[str] = frozenset()
    static_poison_ip: Optional[str] = None

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def resolver_ips(self) -> List[str]:
        return [ip for ip, _ in self.resolvers]

    def poisoned_resolver_ips(self) -> List[str]:
        return [ip for ip, service in self.resolvers
                if service.config.is_poisoned]

    def owns_ip(self, ip: str) -> bool:
        return self.pool.contains(ip)


def _sample_blocklist(master: FrozenSet[str], density: float,
                      rng: random.Random) -> FrozenSet[str]:
    """An independent per-site sample of the master list."""
    if density >= 1.0:
        return master
    return frozenset(d for d in sorted(master) if rng.random() < density)


def _sized_subset(master: FrozenSet[str], size: int,
                  rng: random.Random) -> FrozenSet[str]:
    """A fixed-size sample of the master list."""
    ordered = sorted(master)
    size = min(size, len(ordered))
    return frozenset(rng.sample(ordered, size))


class ISPBuilder:
    """Builds one :class:`ISPDeployment` into a shared network."""

    def __init__(
        self,
        network: Network,
        global_dns: GlobalDNS,
        profile: ISPProfile,
        *,
        http_blocklist: FrozenSet[str] = frozenset(),
        dns_blocklist: FrozenSet[str] = frozenset(),
        seed: int = 1808,
        scale: float = 1.0,
    ) -> None:
        self.network = network
        self.global_dns = global_dns
        self.profile = profile
        self.http_blocklist = http_blocklist
        self.dns_blocklist = dns_blocklist
        self.rng = random.Random(f"isp|{seed}|{profile.name}")
        self.scale = scale
        self.allocator = PrefixAllocator(Prefix.parse(profile.pool))
        self.deployment = ISPDeployment(
            profile=profile,
            pool=Prefix.parse(profile.pool),
            network=network,
            http_blocklist=http_blocklist,
            dns_blocklist=dns_blocklist,
        )

    # ----------------------------------------------------------------------
    def build(self) -> ISPDeployment:
        self._build_backbone()
        self._build_scan_space()
        self._build_resolvers()
        self._deploy_middleboxes()
        return self.deployment

    def _scaled(self, value: int, minimum: int) -> int:
        return max(minimum, round(value * self.scale))

    # -- topology ----------------------------------------------------------

    def _build_backbone(self) -> None:
        name = self.profile.name
        dep = self.deployment
        net = self.network
        asn = self.profile.asn

        dep.border = net.add_router(
            f"{name}-border", self.allocator.allocate_address(), asn)
        dep.edge_client = net.add_router(
            f"{name}-edge", self.allocator.allocate_address(), asn)

        n_agg = self._scaled(self.profile.n_aggregation, 4)
        for index in range(n_agg):
            agg = net.add_router(
                f"{name}-agg{index}", self.allocator.allocate_address(), asn)
            dep.aggregation.append(agg)
            net.link(dep.edge_client.name, agg.name, delay=AGG_DELAY)
            net.link(agg.name, dep.border.name, delay=BORDER_DELAY)

        dep.client = net.add_host(
            f"{name}-client", self.allocator.allocate_address(), asn)
        net.link(dep.client.name, dep.edge_client.name, delay=EDGE_DELAY)

        # Static address poisoned resolvers point blocked domains at —
        # an ISP-owned host serving nothing (connections hang/404).
        dep.static_poison_ip = self.allocator.allocate_address()
        blackhole = net.add_host(f"{name}-blackhole", dep.static_poison_ip, asn)
        blackhole.stack.send_rst_for_unknown = False
        net.link(blackhole.name, dep.edge_client.name, delay=EDGE_DELAY)

    def _build_scan_space(self) -> None:
        """Prefixes with live port-80 hosts — what outside VPs probe."""
        name = self.profile.name
        dep = self.deployment
        net = self.network
        asn = self.profile.asn
        n_prefixes = self._scaled(self.profile.n_scan_prefixes, 2)
        # Resolvers live inside the scan prefixes (offsets >= 20); make
        # sure capacity suffices at every scale.
        per_prefix_capacity = (1 << (32 - self.profile.scan_prefix_len)) - 22
        resolvers_needed = 0
        if self.profile.mechanism == DNS_POISON:
            resolvers_needed = self._scaled(self.profile.resolver_total, 6)
        if resolvers_needed and per_prefix_capacity > 0:
            required = -(-resolvers_needed // per_prefix_capacity)
            n_prefixes = max(n_prefixes, required)

        for index in range(n_prefixes):
            prefix = self.allocator.allocate(self.profile.scan_prefix_len)
            dep.scan_prefixes.append(prefix)
            edge = net.add_router(
                f"{name}-pedge{index}", self.allocator.allocate_address(), asn)
            dep.scan_edges.append(edge)
            for agg in dep.aggregation:
                net.link(edge.name, agg.name, delay=AGG_DELAY)
            # Two live web hosts per prefix (the paper samples two IPs
            # per live prefix).
            for slot in range(2):
                ip = prefix.address(10 + slot)
                host = net.add_host(f"{name}-web{index}-{slot}", ip, asn)
                net.link(host.name, edge.name, delay=EDGE_DELAY)
                OriginServer(name=host.name).install(host)
                dep.scan_targets.append(ip)

    # -- DNS ------------------------------------------------------------------

    def _build_resolvers(self) -> None:
        name = self.profile.name
        dep = self.deployment
        net = self.network
        asn = self.profile.asn

        # Every ISP runs at least one honest resolver for its clients.
        honest_ip = self.allocator.allocate_address()
        honest_host = net.add_host(f"{name}-resolver-honest", honest_ip, asn)
        net.link(honest_host.name, dep.edge_client.name, delay=EDGE_DELAY)
        honest = ResolverService(
            self.global_dns, ResolverConfig(region="in"))
        honest.install(honest_host)
        dep.resolvers.append((honest_ip, honest))
        dep.honest_resolver_ip = honest_ip
        dep.default_resolver_ip = honest_ip

        if self.profile.mechanism != DNS_POISON:
            return

        total = self._scaled(self.profile.resolver_total, 6)
        poisoned_count = self._scaled(self.profile.resolver_poisoned, 1)
        poisoned_count = min(poisoned_count, total)
        strategy = mixed_poison(dep.static_poison_ip, "127.0.0.2")

        first_poisoned_ip = None
        for index in range(total):
            prefix = dep.scan_prefixes[index % len(dep.scan_prefixes)]
            edge = dep.scan_edges[index % len(dep.scan_edges)]
            offset = 20 + (index // len(dep.scan_prefixes))
            if offset >= prefix.size:
                raise ValueError(
                    f"{name}: scan prefixes too small for "
                    f"{total} resolvers")
            ip = prefix.address(offset)
            host = net.add_host(f"{name}-resolver{index}", ip, asn)
            net.link(host.name, edge.name, delay=EDGE_DELAY)
            poisoned = index < poisoned_count
            if poisoned:
                blocklist = _sample_blocklist(
                    self.dns_blocklist, self.profile.dns_consistency,
                    self.rng)
                config = ResolverConfig(
                    region="in", blocklist=blocklist,
                    poison_strategy=strategy)
                if first_poisoned_ip is None:
                    first_poisoned_ip = ip
            else:
                config = ResolverConfig(region="in")
            service = ResolverService(self.global_dns, config)
            service.install(host)
            dep.resolvers.append((ip, service))

        if first_poisoned_ip is not None:
            # The measurement client of a DNS-censoring ISP is (like
            # most of its subscribers) behind a poisoned resolver.
            dep.default_resolver_ip = first_poisoned_ip

    # -- middleboxes ----------------------------------------------------------

    def _deploy_middleboxes(self) -> None:
        if not self.profile.censors_http:
            return
        dep = self.deployment
        n_agg = len(dep.aggregation)
        n_boxes = round(n_agg * self.profile.inside_coverage)
        if self.profile.inside_coverage > 0:
            n_boxes = max(1, n_boxes)
        n_inbound_visible = round(n_agg * self.profile.outside_coverage)

        chosen = self.rng.sample(range(n_agg), n_boxes)
        inbound_visible = set(chosen[:n_inbound_visible])
        for counter, agg_index in enumerate(chosen):
            sees_inbound = (agg_index in inbound_visible
                            and not self.profile.source_scoped)
            box = self._make_middlebox(
                f"{self.profile.name}-mb{counter}",
                blocklist=_sample_blocklist(
                    self.http_blocklist, self.profile.consistency, self.rng),
                scoped=not sees_inbound,
                seed_tag=counter,
            )
            router = dep.aggregation[agg_index]
            if box.kind == "wiretap":
                router.attach_tap(box)
            else:
                router.attach_inline(box)
            dep.middleboxes.append(box)

    def _make_middlebox(self, name: str, *, blocklist: FrozenSet[str],
                        scoped: bool, seed_tag: int):
        mechanism = self.profile.mechanism
        source_prefixes = [self.deployment.pool] if scoped else None
        spec = self._trigger_spec(blocklist)
        notification = profile_for(self.profile.name)
        session = self._session_kwargs(seed_tag)
        if mechanism == HTTP_WM:
            return WiretapMiddlebox(
                name, self.profile.name, spec, notification,
                miss_rate=self.profile.miss_rate,
                fixed_ip_id=self.profile.fixed_ip_id,
                seed=self.rng.randrange(2 ** 31) + seed_tag,
                source_prefixes=source_prefixes,
                **session,
            )
        mode = OVERT if mechanism == HTTP_IM_OVERT else COVERT
        return InterceptiveMiddlebox(
            name, self.profile.name, spec, mode=mode,
            notification=notification if mode == OVERT else None,
            source_prefixes=source_prefixes,
            **session,
        )

    def _session_kwargs(self, seed_tag: int) -> dict:
        """Session-table parameters threaded from the profile.

        The session seed is derived (not drawn from ``self.rng``) so a
        bounded profile perturbs no other sampling stream.
        """
        profile = self.profile
        return {
            "max_flows": profile.session_max_flows,
            "eviction_policy": profile.session_eviction,
            "overload_policy": profile.session_overload,
            "mapping_expiry": profile.session_mapping_expiry,
            "residual_window": profile.session_residual_window,
            "residual_scope": profile.session_residual_scope,
            "session_seed": seed_tag,
        }

    def _trigger_spec(self, blocklist: FrozenSet[str]) -> TriggerSpec:
        """Per-family matching discipline (see middlebox.triggers).

        Wiretap boxes grep for the exact-case ``Host`` keyword but
        tolerate whitespace; interceptive boxes are case-insensitive
        but whitespace-strict; the covert IM additionally keys on the
        last Host occurrence.  This yields exactly the section-5
        evasion matrix.
        """
        mechanism = self.profile.mechanism
        if mechanism == HTTP_WM:
            return TriggerSpec(
                blocklist=blocklist,
                exact_keyword_case=True,
                strict_value_whitespace=False,
                inspect_last_host_only=False,
                match_www_alias=False,
            )
        if mechanism == HTTP_IM_OVERT:
            return TriggerSpec(
                blocklist=blocklist,
                exact_keyword_case=False,
                strict_value_whitespace=True,
                inspect_last_host_only=False,
                match_www_alias=True,
            )
        return TriggerSpec(
            blocklist=blocklist,
            exact_keyword_case=False,
            strict_value_whitespace=False,
            inspect_last_host_only=True,
            match_www_alias=True,
        )

    # -- peering (called by the world assembler) -------------------------------

    def add_peering_box(self, stub_name: str, router: Router,
                        list_size: int):
        """Install this ISP's censoring box on a peering router facing
        *stub_name* (Table 3's collateral-damage source)."""
        blocklist = _sized_subset(self.http_blocklist, list_size, self.rng)
        box = self._make_middlebox(
            f"{self.profile.name}-peer-{stub_name}",
            blocklist=blocklist,
            scoped=False,
            seed_tag=hash(stub_name) & 0xFFFF,
        )
        if box.kind == "wiretap":
            router.attach_tap(box)
        else:
            router.attach_inline(box)
        self.deployment.peering_boxes[stub_name] = box
        self.deployment.peering_routers[stub_name] = router
        return box
