"""Process-parallel execution of campaign units.

Campaign units are embarrassingly parallel by construction: every unit
runs on a **fresh world built from the campaign seed** (never on state
left over from earlier units), so executing them in worker processes
cannot change what any unit measures.  What *could* differ is the
order results reach the journal — so the campaign keeps submission
free-running but **commits results in canonical unit order** (the
order the serial runner uses).  The journal, and therefore the tables
rendered from it, come out byte-identical to a ``--workers 1`` run;
CI byte-compares the two on every push.

The pieces here are shared by both execution modes:

* :class:`UnitSettings` — the picklable subset of campaign
  configuration a unit's execution depends on;
* :func:`execute_unit` — build world, arm watchdog, run one unit,
  classify the outcome into a journal record (the single
  implementation both the serial loop and the workers call);
* :func:`worker_initializer` / :func:`run_unit_task` — the worker
  entry points used by the supervised pool
  (:mod:`repro.runner.supervise`).  Workers receive only
  ``(experiment, unit name, attempt)`` triples and re-resolve the unit
  from the experiment registry, so no closures ever cross the process
  boundary.  Deterministic chaos hooks (:data:`KILL_ENV` /
  :data:`HANG_ENV`) let tests and CI kill or wedge workers at exact
  ``unit:attempt`` points.

Wall-clock timings are *returned* alongside records but never
journaled — they are the one nondeterministic observable, and live in
the run directory's ``timings.jsonl`` sidecar instead.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from typing import Dict, Optional, Tuple

from .errors import (FATAL, POISON, CampaignError, UnitTimeout,
                     classify_error)
from .units import Unit
from .watchdog import Watchdog

#: Chaos hook: SIGKILL the worker at specific ``experiment/unit:attempt``
#: points (comma-separated; omit ``:attempt`` to kill every attempt).
#: Lets CI exercise the supervisor's crash-recovery path with real,
#: deterministic worker deaths.
KILL_ENV = "REPRO_CAMPAIGN_WORKER_KILL"

#: Chaos hook: spin in **pure Python** (no simulated events, so the
#: cooperative watchdog is blind) at matching ``experiment/unit``
#: points — the documented hole hard deadline enforcement closes.
HANG_ENV = "REPRO_CAMPAIGN_WORKER_HANG"

#: Safety net on the chaos hang: never spin longer than this, so a
#: test that forgot a unit wall cannot wedge CI forever.
HANG_SPIN_LIMIT = 600.0


@dataclasses.dataclass(frozen=True)
class UnitSettings:
    """Everything a unit's execution depends on, in picklable form."""

    seed: int
    scale: float
    fraction: float
    loss: float = 0.0
    fault_seed: int = 0
    retries: Optional[int] = None
    unit_steps: Optional[int] = None
    unit_wall: Optional[float] = None
    #: Attach a trace bus to every unit world and return the buffered
    #: events through the result channel (``--trace``).
    trace: bool = False
    #: Per-unit event cap (fixed so truncation is deterministic).
    trace_limit: int = 100_000
    #: Per-worker address-space budget (MiB), applied via
    #: ``resource.setrlimit`` in :func:`worker_initializer` so one
    #: pathological world build cannot OOM the host.  ``None`` = off.
    memory_limit_mb: Optional[int] = None
    #: Keep hot worlds resident in each worker
    #: (:mod:`repro.runner.worldpool`): the worker prebuilds the next
    #: unit's world while idle, so units skip the inline rebuild.
    #: Byte-identity with cold builds is pinned by tests; the service
    #: turns this on, batch ``repro campaign`` keeps the seed path.
    warm_worlds: bool = False


class FatalUnitError(Exception):
    """A unit died of a programming error.

    Carries the failed unit's journal record so the campaign can note
    the crash durably before propagating; ``original`` is the fatal
    exception itself (re-raised verbatim by the serial path).
    """

    def __init__(self, record: Dict, original: BaseException) -> None:
        super().__init__(str(original))
        self.record = record
        self.original = original


class PoisonUnitError(Exception):
    """A unit hit a :data:`~repro.runner.errors.POISON` failure.

    The process that ran it may be damaged (a ``MemoryError`` leaves
    arbitrary allocations half-done), so the unit is retried in a
    fresh worker and quarantined when the failure repeats, instead of
    aborting the campaign.  Carries the half-built record like
    :class:`FatalUnitError`.
    """

    def __init__(self, record: Dict, original: BaseException) -> None:
        super().__init__(str(original))
        self.record = record
        self.original = original


def build_unit_world(settings: UnitSettings):
    """A pristine world per unit: resume- and order-independence."""
    from ..isps.world import build_world
    from ..netsim.faults import DEFAULT_HARDENING, FaultPlan

    world = build_world(seed=settings.seed, scale=settings.scale)
    if settings.loss:
        hardening = DEFAULT_HARDENING
        if settings.retries is not None:
            hardening = dataclasses.replace(
                hardening,
                dns_attempts=max(1, settings.retries),
                fetch_attempts=max(1, settings.retries))
        world.install_faults(
            FaultPlan.uniform_loss(settings.loss,
                                   seed=settings.fault_seed),
            hardening)
    return world


def execute_unit(settings: UnitSettings, experiment: str, unit: Unit,
                 watchdog: Watchdog,
                 world_source=None) -> Tuple[Dict, float, Dict]:
    """Run one unit; returns ``(journal record, wall seconds, extras)``.

    The record carries only deterministic fields (status, payload,
    simulated-step count); the wall measurement rides separately so
    journals stay byte-identical across runs and execution modes.
    ``extras`` is the observability side channel — never journaled:

    * ``extras["metrics"]`` — a deterministic
      :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of the
      unit's world (cache hit rates, drops by reason, middlebox and
      DNS counters), merged by the campaign in canonical commit order;
    * ``extras["trace"]`` — when ``settings.trace`` is set, the unit's
      buffered trace events as canonical JSON lines (else ``None``).

    ``world_source`` overrides how the unit's pristine world is
    obtained (default: :func:`build_unit_world`); the supervised
    workers pass a :class:`~repro.runner.worldpool.WorldPool` checkout
    when ``settings.warm_worlds`` is set.  Any source must yield a
    world byte-equivalent to a fresh build.

    Fatal (programming) errors raise :class:`FatalUnitError` wrapping
    the half-built record.
    """
    from ..experiments.common import domain_sample
    from ..obs.metrics import (MetricsRegistry, STEP_BUCKETS,
                               collect_world_metrics)

    record: Dict = {"type": "unit", "experiment": experiment,
                    "unit": unit.name, "payload": None,
                    "error": None, "timeout": None}
    obs_snapshot: Optional[Dict] = None
    start = time.monotonic()
    world = (world_source(settings) if world_source is not None
             else build_unit_world(settings))
    sink = None
    if settings.trace:
        from ..obs.trace import BufferSink, TraceBus

        bus = TraceBus()
        sink = BufferSink(limit=settings.trace_limit)
        bus.subscribe(sink)
        bus.corr = f"{experiment}/{unit.name}"
        world.network.trace = bus
        bus.emit("unit-start", world.network.now,
                 experiment=experiment, unit=unit.name)
    domains = domain_sample(world, settings.fraction)
    watchdog.begin_unit(world.network)
    try:
        payload = unit.fn(world, domains)
    except UnitTimeout as exc:
        record["status"] = "timeout"
        record["timeout"] = {"kind": exc.kind, "detail": exc.detail}
    except Exception as exc:
        category = classify_error(exc)
        record["status"] = "failed"
        record["error"] = {
            "category": category,
            "reason": f"{type(exc).__name__}: {exc}",
        }
        if category == FATAL:
            record["steps"] = watchdog.end_unit()
            raise FatalUnitError(record, exc) from exc
        if category == POISON:
            record["steps"] = watchdog.end_unit()
            raise PoisonUnitError(record, exc) from exc
    else:
        if isinstance(payload, dict):
            # Experiments may return a deterministic metrics snapshot
            # alongside their rows (``payload["obs_metrics"]``, e.g.
            # the population sketch counters).  Lift it out before
            # journaling — it belongs in the metrics.json sidecar, and
            # keeping it out of the journal keeps resume hashes and
            # tables.txt unchanged for experiments that don't use it.
            obs_snapshot = payload.pop("obs_metrics", None)
        errors = payload.get("errors") if isinstance(payload, dict) \
            else None
        record["status"] = "degraded" if errors else "ok"
        record["payload"] = payload
    finally:
        steps = watchdog.end_unit()
    record["steps"] = steps
    registry = MetricsRegistry()
    collect_world_metrics(registry, world, experiment=experiment)
    if obs_snapshot:
        registry.merge(obs_snapshot)
    if steps is not None:
        registry.histogram("campaign_unit_steps", STEP_BUCKETS,
                           experiment=experiment).observe(steps)
    extras = {
        "metrics": registry.snapshot(),
        "trace": sink.lines() if sink is not None else None,
    }
    return record, time.monotonic() - start, extras


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------

#: Per-worker state installed by :func:`worker_initializer`:
#: the settings plus a lazily built ``{experiment: {name: Unit}}`` memo
#: (units are re-resolved from the registry once per worker, then
#: reused for every task the worker executes).
_WORKER: Dict = {}


def worker_initializer(settings: UnitSettings) -> None:
    _WORKER["settings"] = settings
    _WORKER["units"] = {}
    _WORKER["pool"] = None
    _apply_memory_limit(settings.memory_limit_mb)
    if settings.warm_worlds:
        from .worldpool import WorldPool

        pool = WorldPool()
        # Worker startup overlaps the parent's spool/journal setup and
        # dispatch latency, so the first unit already starts hot.
        pool.prebuild(settings)
        _WORKER["pool"] = pool


def _apply_memory_limit(limit_mb: Optional[int]) -> None:
    """Cap this process's address space (best effort, POSIX only).

    Meant for worker processes — applying it to the campaign parent
    (or a test process) would cap *that* process too, which is why the
    limit rides :class:`UnitSettings` instead of ambient state.
    """
    if not limit_mb:
        return
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    limit = int(limit_mb) * 1024 * 1024
    try:
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):  # pragma: no cover - platform quirk
        pass


# ---------------------------------------------------------------------------
# Chaos hooks (worker side)
# ---------------------------------------------------------------------------

#: Parsed chaos plans, memoized per raw env value (workers are
#: long-lived; the env never changes underneath them).
_CHAOS_CACHE: Dict[Tuple[str, str], Dict[str, Optional[frozenset]]] = {}


def _parse_chaos_plan(raw: str) -> Dict[str, Optional[frozenset]]:
    """``exp/unit:attempt,...`` -> ``{"exp/unit": {attempts} | None}``.

    ``None`` means *every* attempt (an entry without ``:attempt``).
    Malformed entries are ignored — a typo in a chaos knob must never
    take down a real campaign.
    """
    plan: Dict[str, Optional[frozenset]] = {}
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry or "/" not in entry:
            continue
        key, attempt = entry, None
        if ":" in entry:
            head, _, tail = entry.rpartition(":")
            try:
                attempt = int(tail)
                key = head
            except ValueError:
                attempt = None
        attempts = plan.get(key, frozenset())
        if attempt is None or attempts is None:
            plan[key] = None
        else:
            plan[key] = attempts | {attempt}
    return plan


def _chaos_match(env: str, experiment: str, unit_name: str,
                 attempt: int) -> bool:
    raw = os.environ.get(env)
    if not raw:
        return False
    plan = _CHAOS_CACHE.get((env, raw))
    if plan is None:
        plan = _CHAOS_CACHE[(env, raw)] = _parse_chaos_plan(raw)
    attempts = plan.get(f"{experiment}/{unit_name}", frozenset())
    return attempts is None or attempt in attempts


def _maybe_chaos(experiment: str, unit_name: str, attempt: int) -> None:
    """Apply the deterministic chaos plan, if any, for this task."""
    if _chaos_match(KILL_ENV, experiment, unit_name, attempt):
        os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
    if _chaos_match(HANG_ENV, experiment, unit_name, attempt):
        # Pure-Python spin: no simulated events, so the cooperative
        # watchdog cannot interrupt it — only a hard deadline kill can.
        deadline = time.monotonic() + HANG_SPIN_LIMIT
        while time.monotonic() < deadline:
            pass


def _resolve_unit(experiment: str, unit_name: str) -> Unit:
    from ..experiments import EXPERIMENT_MODULES

    by_name = _WORKER["units"].get(experiment)
    if by_name is None:
        module = EXPERIMENT_MODULES.get(experiment)
        if module is None:
            raise CampaignError(f"worker: unknown experiment "
                                f"{experiment!r}")
        by_name = {unit.name: unit for unit in module.units()}
        _WORKER["units"][experiment] = by_name
    unit = by_name.get(unit_name)
    if unit is None:
        raise CampaignError(
            f"worker: experiment {experiment!r} has no unit "
            f"{unit_name!r}")
    return unit


def run_unit_task(experiment: str, unit_name: str, attempt: int = 1
                  ) -> Tuple[Dict, float, Dict, Optional[str]]:
    """Pool task: execute one unit in this worker process.

    Returns ``(record, wall, extras, kind)`` where ``kind`` is ``None``
    for a normal outcome, ``"fatal"`` for a programming error, or
    ``"poison"`` for a resource failure the supervisor should route
    through retry/quarantine.  Fatal and poison errors are folded into
    the returned record rather than raised, so the parent can journal
    them durably — mirroring the serial path.  The wall measurement
    covers the failed attempt too (a crashed unit's elapsed time is
    forensic data, not something to zero out).
    """
    settings: UnitSettings = _WORKER["settings"]
    pool = _WORKER.get("pool")
    start = time.monotonic()
    _maybe_chaos(experiment, unit_name, attempt)
    unit = _resolve_unit(experiment, unit_name)
    # Each worker arms its own unit-scope watchdog; the campaign-wide
    # wall budget stays with the parent, which enforces it between
    # journal commits exactly as the serial loop does between units.
    watchdog = Watchdog(unit_steps=settings.unit_steps,
                        unit_wall=settings.unit_wall)
    world_source = pool.checkout if pool is not None else None
    try:
        record, wall, extras = execute_unit(settings, experiment, unit,
                                            watchdog,
                                            world_source=world_source)
    except FatalUnitError as exc:
        return (exc.record, time.monotonic() - start,
                {"metrics": None, "trace": None}, "fatal")
    except PoisonUnitError as exc:
        return (exc.record, time.monotonic() - start,
                {"metrics": None, "trace": None}, "poison")
    return record, wall, extras, None


def idle_prebuild() -> None:
    """Restock the worker's world pool between tasks.

    Called by the worker loop *after* a result has shipped, so the
    build overlaps the parent's journal commit and dispatch round-trip
    instead of sitting on any unit's critical path.  Legal exactly
    because no unit is executing in this process at that moment (the
    build stomps the process-global qid/port streams — see
    :mod:`repro.runner.worldpool`).  A failed prebuild falls back to
    inline builds rather than killing the worker; ``MemoryError``
    propagates so the supervisor can attribute it.
    """
    pool = _WORKER.get("pool")
    if pool is None:
        return
    try:
        pool.prebuild(_WORKER["settings"])
    except MemoryError:
        raise
    except Exception:
        pool.clear()
        _WORKER["pool"] = None
