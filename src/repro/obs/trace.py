"""The structured trace bus: hop-level evidence, zero cost when off.

The paper's methodology is *iterative network tracing* — reasoning
about where in the path a probe died and which box answered (§3.4-V).
The simulator computes those answers; this module keeps the evidence
trail.  Every layer that moves or forges a packet can emit typed
events onto a :class:`TraceBus` attached to the network:

==================  =====================================================
kind                emitted by / meaning
==================  =====================================================
``send``            a host transmitted a packet (origin of a flow)
``hop``             a router forwarded a packet (post-TTL-decrement)
``ttl-exceeded``    a TTL died at a router (``icmp`` says whether a
                    Time-Exceeded was sent — anonymized routers stay
                    silent, the traceroute ``*`` of §6.1)
``drop``            the engine dropped a packet (``reason`` as in
                    :meth:`~repro.netsim.engine.Network.drop_stats`)
``deliver``         a packet reached its destination host
``inject``          a (usually forged) packet entered mid-path
``wm-trigger``      a wiretap middlebox matched and is injecting
                    (``lost_race`` marks the §4.2.1 slow reaction)
``im-intercept``    an interceptive middlebox consumed a request
``dns-inject``      an on-path DNS injector forged an answer
``dns-poisoned``    a poisoned resolver lied about a blocked name
``retry``           a hardened client retried after silence
``probe``           one express (path-walk) probe verdict
``unit-start``      campaign bookkeeping: a measurement unit began
``truncated``       something bounded overflowed; ``dropped`` counts
                    what was not kept.  Emitted by
                    :class:`BufferSink` when the per-unit event cap is
                    hit (``dropped`` = events), and by an interceptive
                    middlebox when a flow's reassembly buffer hits
                    ``max_buffer`` (``box``/``flow`` set, ``dropped``
                    = payload bytes)
``flow-evicted``    a full session table evicted ``victim`` to admit a
                    new flow (``policy`` names the eviction policy)
``overload-fail-open``   a full session table left a new flow
                    untracked — it passes uninspected
``overload-fail-closed`` a full session table refused a new flow —
                    the box resets it
``residual-block``  a fresh flow hit a residual-censorship entry
                    (``domain`` is the original verdict) and is
                    blocked despite its new handshake
==================  =====================================================

The campaign supervisor (:mod:`repro.runner.supervise`) reuses this
bus for its own event family — ``worker-crash``, ``unit-retry``,
``unit-quarantined``, ``unit-hard-timeout``, ``worker-spawn`` — but
those are wall-clock forensics, so they stream to the separate
``supervision.jsonl`` sidecar, never ``trace.jsonl`` (which must stay
byte-identical between serial and ``--workers N`` runs).

Every event carries the virtual-clock time ``t`` (never wall time — so
traces are byte-reproducible), its ``kind``, a ``corr`` correlation
scope when one is set (campaigns use ``experiment/unit``), and for
packet events a ``flow`` id shared by **both directions** of a
conversation — forged responses correlate with the request that
provoked them, which is what makes a probe's life reconstructable
traceroute-style.

Cost model: ``Network.trace`` is ``None`` by default, so the disabled
state costs one attribute test per emit site.  A bus with no
subscribers (``active == False``) costs one extra attribute test; the
event dict is only built when someone is listening.  A bench gate
(``benchmarks/bench_simulator_performance.py::
test_trace_overhead_express_probe``) holds the unsubscribed overhead
under 5% on the express probe sweep.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

#: Event-dict signature every sink receives.
TraceSink = Callable[[Dict], None]

#: Decimal places kept on virtual timestamps (the engine schedules in
#: fractions of DEFAULT_LINK_DELAY=5 ms; 9 places is exact for every
#: delay the simulator uses while keeping JSON lines compact).
TIME_DECIMALS = 9


def flow_id(packet) -> str:
    """A direction-agnostic flow identifier for *packet*.

    Both directions of a conversation — and forged packets claiming
    either endpoint — map to the same id, mirroring how the ECMP hash
    keys the unordered address pair so middleboxes see both sides.
    """
    proto, src, sport, dst, dport = packet.flow_key()
    a = f"{src}:{sport}"
    b = f"{dst}:{dport}"
    lo, hi = (a, b) if a <= b else (b, a)
    return f"{proto}:{lo}<->{hi}"


class TraceBus:
    """Fan-out point for trace events; inert until subscribed to."""

    __slots__ = ("_sinks", "active", "corr", "emitted")

    def __init__(self) -> None:
        self._sinks: List[TraceSink] = []
        #: True iff at least one sink is subscribed.  Emit sites check
        #: this before building the event dict, so an attached-but-
        #: unsubscribed bus costs two attribute reads per site.
        self.active = False
        #: Correlation scope stamped onto every event while set
        #: (campaigns use ``experiment/unit``; probes may nest finer).
        self.corr: Optional[str] = None
        #: Total events delivered to sinks (diagnostics).
        self.emitted = 0

    def subscribe(self, sink: TraceSink) -> Callable[[], None]:
        """Attach *sink*; returns a callable that detaches it."""
        self._sinks.append(sink)
        self.active = True

        def unsubscribe() -> None:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass
            self.active = bool(self._sinks)

        return unsubscribe

    def emit(self, kind: str, t: float, **fields) -> None:
        """Deliver one typed event to every sink.

        Callers are expected to have checked :attr:`active` already
        (the hot-path contract); calling anyway on an inactive bus is
        harmless.
        """
        if not self._sinks:
            return
        event: Dict = {"t": round(t, TIME_DECIMALS), "kind": kind}
        if self.corr is not None:
            event["corr"] = self.corr
        event.update(fields)
        self.emitted += 1
        for sink in self._sinks:
            sink(event)

    @contextmanager
    def correlate(self, corr: str):
        """Scope: stamp *corr* onto every event emitted inside."""
        previous = self.corr
        self.corr = corr
        try:
            yield self
        finally:
            self.corr = previous


class BufferSink:
    """Bounded in-memory sink; the campaign's per-unit collector.

    The cap is a fixed number, so whether truncation happens — and
    after exactly which event — is as deterministic as the events
    themselves.  :meth:`lines` appends a final ``truncated`` event
    when anything was dropped, carrying the exact count.
    """

    def __init__(self, limit: int = 100_000) -> None:
        self.limit = limit
        self.events: List[Dict] = []
        self.dropped = 0

    def __call__(self, event: Dict) -> None:
        if len(self.events) < self.limit:
            self.events.append(event)
        else:
            self.dropped += 1

    def lines(self) -> List[str]:
        """The buffered events as canonical (key-sorted) JSON lines."""
        events = list(self.events)
        if self.dropped:
            events.append({"kind": "truncated", "dropped": self.dropped})
        return [event_json(event) for event in events]


class JsonlSink:
    """Streams events to a JSONL file as they happen (ad-hoc runs).

    Campaigns do **not** use this directly — they buffer per unit and
    write in canonical commit order so ``--workers N`` stays
    byte-identical; this sink is for interactive/one-shot tracing.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")

    def __call__(self, event: Dict) -> None:
        self._fh.write(event_json(event) + "\n")

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def event_json(event: Dict) -> str:
    """Canonical single-line JSON for one event (key-sorted, compact)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))
