"""Crash-atomic writes for run-directory artifacts.

Every non-append artifact a run produces (``tables.txt``,
``metrics.json``, ``report.md``/``report.json``, the service's
``status.json``/``submission.json``) goes through :func:`replace_text`
or :func:`replace_json`: write the full content to a ``*.tmp`` sibling,
flush, fsync, then :func:`os.replace` over the destination.  A crash at
any instant leaves either the old complete file or the new complete
file — never a torn half-write for ``repro report`` or boot-time
recovery to trip over.

Append-only streams (the hash-chained journal, ``timings.jsonl``,
``trace.jsonl``, ``supervision.jsonl``) are deliberately out of scope:
their crash mode is a torn *tail line*, which their readers already
detect and discard.
"""

from __future__ import annotations

import json
import os
from typing import Dict

#: Suffix of the scratch sibling ``replace_text`` stages into.
TMP_SUFFIX = ".tmp"


def replace_text(path: str, text: str, fsync_dir: bool = True) -> None:
    """Atomically replace *path* with *text* (tmp + fsync + replace).

    The temporary file lives next to the destination (same filesystem,
    so the final ``os.replace`` is a metadata-only rename).  The
    containing directory is fsynced afterwards so the rename itself is
    durable, not just the bytes; pass ``fsync_dir=False`` for callers
    on filesystems where directory fsync is known-noisy.
    """
    tmp = path + TMP_SUFFIX
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync_dir:
        _fsync_dir(os.path.dirname(path) or ".")


def replace_json(path: str, payload: Dict, indent: int = 2,
                 fsync_dir: bool = True) -> None:
    """Atomically replace *path* with *payload* as sorted-key JSON."""
    replace_text(path,
                 json.dumps(payload, indent=indent, sort_keys=True) + "\n",
                 fsync_dir=fsync_dir)


def read_json(path: str, default=None):
    """Load a JSON artifact, treating torn/unparsable content as absent.

    The atomic-write discipline means a *committed* artifact is always
    complete; anything unparsable is a leftover from pre-atomic code or
    outside interference, and callers uniformly prefer "unavailable"
    over an exception at read time.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return default


def _fsync_dir(dirname: str) -> None:
    """Best-effort fsync of a directory (POSIX; no-op elsewhere)."""
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic platform/permissions
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)
