"""repro.isps — ISP models: profiles, builders and world assembly."""

from .builder import ISPBuilder, ISPDeployment
from .profiles import (
    COLLATERAL_ISPS,
    DNS_FILTERING_ISPS,
    DNS_POISON,
    HTTP_FILTERING_ISPS,
    HTTP_IM_COVERT,
    HTTP_IM_OVERT,
    HTTP_WM,
    ISPProfile,
    NONE,
    OONI_TESTED_ISPS,
    PROFILES,
    profile,
)
from .world import (
    CONTROL_SERVER_IP,
    DEFAULT_SEED,
    GOOGLE_DNS_IP,
    REMOTE_SERVER_IP,
    TOR_EXIT_IP,
    World,
    build_world,
)

__all__ = [
    "COLLATERAL_ISPS",
    "CONTROL_SERVER_IP",
    "DEFAULT_SEED",
    "DNS_FILTERING_ISPS",
    "DNS_POISON",
    "GOOGLE_DNS_IP",
    "HTTP_FILTERING_ISPS",
    "HTTP_IM_COVERT",
    "HTTP_IM_OVERT",
    "HTTP_WM",
    "ISPBuilder",
    "ISPDeployment",
    "ISPProfile",
    "NONE",
    "OONI_TESTED_ISPS",
    "PROFILES",
    "REMOTE_SERVER_IP",
    "TOR_EXIT_IP",
    "World",
    "build_world",
    "profile",
]
