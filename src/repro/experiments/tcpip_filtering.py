"""Section 3.3 — TCP/IP packet-filtering test.

Five handshakes, two virtual seconds apart, for Tor-reachable PBWs
from inside every ISP.  The paper's (negative) finding: no Indian ISP
filters on network/transport headers — and neither does any deployment
in this world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.measure.tcpip import TCPIPFilterReport, detect_tcpip_filtering
from ..isps.profiles import OONI_TESTED_ISPS
from .common import domain_sample, format_table, get_world


@dataclass
class TCPIPExperimentResult:
    reports: Dict[str, TCPIPFilterReport] = field(default_factory=dict)

    @property
    def any_filtering(self) -> bool:
        return any(report.any_filtering for report in self.reports.values())

    def render(self) -> str:
        headers = ["ISP", "sites tested", "filtered", "finding"]
        body = []
        for isp, report in self.reports.items():
            filtered = report.filtered_domains()
            body.append([
                isp, len(report.successes), len(filtered),
                "TCP/IP filtering" if filtered else "none (as in paper)",
            ])
        return format_table(headers, body,
                            title="Section 3.3: TCP/IP filtering test")


def run(world=None, domains: Optional[List[str]] = None,
        isps=OONI_TESTED_ISPS, sites_per_isp: int = 25
        ) -> TCPIPExperimentResult:
    """Run the five-handshake test in every ISP."""
    if world is None:
        world = get_world()
    if domains is None:
        domains = domain_sample(world, fraction=None)
    result = TCPIPExperimentResult()
    for isp in isps:
        result.reports[isp] = detect_tcpip_filtering(
            world, isp, domains[:sites_per_isp])
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
