"""Session-table realism: finite capacity, overload policies, residual
censorship, NAT-style mapping expiry (docs/SESSION_DYNAMICS.md)."""

from repro.middlebox import (
    ESTABLISHED,
    FAIL_CLOSED,
    FAIL_OPEN,
    FlowTable,
    SYN_SEEN,
)
from repro.netsim import TCPFlags, make_tcp_packet

C, S = "10.0.0.1", "93.184.216.34"


def syn(port=4000, seq=100, src=C):
    return make_tcp_packet(src, S, port, 80, seq=seq, flags=TCPFlags.SYN)


def synack(port=4000, seq=500, ack=101):
    return make_tcp_packet(S, C, 80, port, seq=seq, ack=ack,
                           flags=TCPFlags.SYN | TCPFlags.ACK)


def client_ack(port=4000, seq=101, ack=501):
    return make_tcp_packet(C, S, port, 80, seq=seq, ack=ack,
                           flags=TCPFlags.ACK)


def rst(port=4000, seq=101):
    return make_tcp_packet(C, S, port, 80, seq=seq, flags=TCPFlags.RST)


def handshake(table, port, at=0.0):
    table.observe(syn(port), at)
    table.observe(synack(port), at + 0.01)
    return table.observe(client_ack(port), at + 0.02)


class TestCapacity:
    def test_unbounded_by_default(self):
        table = FlowTable()
        for port in range(4000, 4050):
            table.observe(syn(port), 0.0)
        assert len(table) == 50
        assert table.events == []

    def test_fail_open_leaves_new_flow_untracked(self):
        table = FlowTable(max_flows=2, eviction_policy="none",
                          overload_policy=FAIL_OPEN)
        table.observe(syn(4000), 0.0)
        table.observe(syn(4001), 0.1)
        record = table.observe(syn(4002), 0.2)
        assert record is None
        assert len(table) == 2
        assert table.drain_events() == [("overload-fail-open", {})]

    def test_fail_closed_queues_refusal(self):
        table = FlowTable(max_flows=1, eviction_policy="none",
                          overload_policy=FAIL_CLOSED)
        table.observe(syn(4000), 0.0)
        assert table.observe(syn(4001), 0.1) is None
        assert table.drain_events() == [("overload-fail-closed", {})]

    def test_existing_flow_unaffected_by_full_table(self):
        """Packets of already-admitted flows never hit the cap."""
        table = FlowTable(max_flows=2, eviction_policy="none")
        handshake(table, 4000)
        table.observe(syn(4001), 1.0)
        record = table.observe(client_ack(4000), 2.0)
        assert record is not None and record.state == ESTABLISHED

    def test_high_water_tracks_peak_occupancy(self):
        table = FlowTable(max_flows=3)
        for port in (4000, 4001, 4002):
            table.observe(syn(port), 0.0)
        table.observe(rst(4000, seq=100), 1.0)
        assert len(table) == 2
        assert table.high_water == 3


class TestEviction:
    def test_lru_evicts_least_recently_active(self):
        table = FlowTable(max_flows=2, eviction_policy="lru")
        table.observe(syn(4000), 0.0)
        table.observe(syn(4001), 1.0)
        table.observe(client_ack(4000), 2.0)  # 4000 is now fresher
        table.observe(syn(4002), 3.0)
        events = table.drain_events()
        assert [kind for kind, _ in events] == ["flow-evicted"]
        assert events[0][1]["victim"].client_port == 4001
        assert events[0][1]["policy"] == "lru"
        assert len(table) == 2

    def test_oldest_established_prefers_established_victims(self):
        table = FlowTable(max_flows=2,
                          eviction_policy="oldest-established")
        handshake(table, 4000, at=0.0)
        # 4001 is embryonic with *fresher* activity than established
        # 4000; the policy must still pick the established flow.
        table.observe(syn(4001), 5.0)
        table.observe(syn(4002), 6.0)
        events = table.drain_events()
        assert events[0][1]["victim"].client_port == 4000

    def test_random_eviction_is_seed_deterministic(self):
        def run(seed):
            table = FlowTable(max_flows=2, eviction_policy="random",
                              eviction_seed=seed)
            table.observe(syn(4000), 0.0)
            table.observe(syn(4001), 1.0)
            table.observe(syn(4002), 2.0)
            return [event[1]["victim"].client_port
                    for event in table.drain_events()]

        assert run(7) == run(7)

    def test_eviction_admits_the_new_flow(self):
        table = FlowTable(max_flows=1, eviction_policy="lru")
        table.observe(syn(4000), 0.0)
        record = table.observe(syn(4001), 1.0)
        assert record is not None and record.client_port == 4001
        assert len(table) == 1


class TestResidual:
    def arm(self, table, port=4000, at=10.0):
        record = handshake(table, port)
        table.mark_censored(record, "blocked.com", at)
        return record

    def test_fresh_handshake_in_window_is_blocked(self):
        table = FlowTable(residual_window=30.0)
        self.arm(table, at=10.0)
        table.observe(rst(4000), 11.0)
        record = table.observe(syn(4777, seq=900), 20.0)
        assert record.censored and record.censored_domain == "blocked.com"
        assert table.drain_events()[-1] == (
            "residual-block", {"domain": "blocked.com"})

    def test_window_expires(self):
        table = FlowTable(residual_window=30.0)
        self.arm(table, at=10.0)
        record = table.observe(syn(4777, seq=900), 41.0)
        assert not record.censored

    def test_three_tuple_scope_ignores_client_port(self):
        table = FlowTable(residual_window=30.0, residual_scope="3-tuple")
        self.arm(table, at=10.0)
        assert table.observe(syn(4999, seq=1), 15.0).censored

    def test_four_tuple_scope_is_port_specific(self):
        table = FlowTable(residual_window=30.0, residual_scope="4-tuple")
        self.arm(table, port=4000, at=10.0)
        assert not table.observe(syn(4999, seq=1), 15.0).censored
        table.observe(rst(4999, seq=2), 15.5)
        table.observe(rst(4000), 16.0)
        assert table.observe(syn(4000, seq=2), 17.0).censored

    def test_residual_block_does_not_extend_the_window(self):
        """Only verdicts arm windows; residually-blocked flows do not."""
        table = FlowTable(residual_window=30.0)
        self.arm(table, at=10.0)  # window ends at 40
        table.observe(syn(4800, seq=1), 39.0)   # blocked, near the end
        record = table.observe(syn(4900, seq=1), 41.0)
        assert not record.censored

    def test_default_table_arms_nothing(self):
        table = FlowTable()
        self.arm(table, at=10.0)
        assert table.residual == {}


class TestMappingExpiry:
    def test_active_flow_dies_at_absolute_lifetime(self):
        """NAT-style expiry fires even with constant fresh activity."""
        table = FlowTable(timeout=150.0, mapping_expiry=60.0)
        handshake(table, 4000)
        for t in range(10, 60, 10):
            assert table.observe(client_ack(4000), float(t)) is not None
        assert table.observe(client_ack(4000), 61.0) is None
        assert len(table) == 0

    def test_idle_timeout_still_applies_first(self):
        table = FlowTable(timeout=10.0, mapping_expiry=600.0)
        handshake(table, 4000)
        assert table.observe(client_ack(4000), 11.1) is None


class TestTruncation:
    def test_cap_enforced_and_reported_once(self):
        table = FlowTable(max_buffer=8)
        record = handshake(table, 4000)
        assert table.append_payload(record, b"12345678") is False
        assert table.append_payload(record, b"xx") is True   # first overflow
        assert table.append_payload(record, b"yy") is False  # only once
        assert record.truncated
        assert record.buffer_dropped == 4
        assert bytes(record.buffer) == b"12345678"
        assert table.truncated_flows == 1

    def test_empty_payload_never_truncates(self):
        table = FlowTable(max_buffer=4)
        record = handshake(table, 4000)
        table.append_payload(record, b"1234")
        assert table.append_payload(record, b"") is False
        assert not record.truncated


class TestAmortizedPurge:
    def test_unacked_syn_flood_stays_bounded(self):
        """Satellite regression: a flood of never-revisited SYNs cannot
        grow an unbounded table past ~two timeout windows' worth."""
        table = FlowTable(timeout=10.0)
        port = 1024
        for step in range(4000):
            now = step * 0.1  # 400 s of flooding, 10 SYNs/s
            table.observe(syn(port=1024 + step % 30000, seq=step), now)
            port += 1
        # Only flows younger than ~2*timeout can survive the amortized
        # sweep: 2 * 10 s * 10 SYN/s = 200, plus slack for sweep phase.
        assert len(table) <= 250

    def test_sweep_also_clears_residual_entries(self):
        table = FlowTable(timeout=10.0, residual_window=5.0)
        record = handshake(table, 4000)
        table.mark_censored(record, "blocked.com", 1.0)
        assert table.residual
        table.observe(syn(5000, seq=1), 100.0)  # triggers the sweep
        assert table.residual == {}


class TestLookupOrientation:
    """Satellite: _lookup edge cases around key orientation."""

    def test_reverse_key_expiry_removes_the_record(self):
        """Expiry discovered via a *server-side* packet must pop the
        record under its canonical (client-side) key."""
        table = FlowTable(timeout=10.0)
        handshake(table, 4000)
        # Run the amortized sweep now (flow still fresh, survives) so
        # the lookup below exercises the lazy expiry path, not the sweep.
        table.observe(client_ack(5000), 10.0)
        server_data = make_tcp_packet(S, C, 80, 4000, seq=501, ack=101,
                                      flags=TCPFlags.ACK)
        assert table.observe(server_data, 12.0) is None
        assert len(table) == 0

    def test_syn_reanchors_opposite_orientation(self):
        """A SYN from the old server side flips the roles; the stale
        opposite-orientation record must not linger."""
        table = FlowTable()
        handshake(table, 4000)
        flipped = make_tcp_packet(S, C, 80, 4000, seq=7, flags=TCPFlags.SYN)
        record = table.observe(flipped, 1.0)
        assert record.client_ip == S and record.client_port == 80
        assert len(table) == 1  # the old (C, 4000, S, 80) record is gone

    def test_rst_teardown_then_same_tuple_reuse(self):
        table = FlowTable()
        record = handshake(table, 4000)
        table.mark_censored(record, "blocked.com", 0.5)
        table.observe(rst(4000), 1.0)
        assert len(table) == 0
        fresh = table.observe(syn(4000, seq=9000), 2.0)
        assert fresh.state == SYN_SEEN
        assert fresh.client_isn == 9000
        assert not fresh.censored  # no residual window configured
