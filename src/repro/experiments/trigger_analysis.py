"""Section 3.4-III/IV — what triggers censorship, per ISP.

For every HTTP-censoring ISP, find a (site, path) pair with a live
middlebox and run the full trigger battery: paired TTL n−1/n requests,
crafted-header bypass, and Host-offset fudging.  The paper's conclusion
— request-only inspection keyed solely on the Host field — must hold
for every ISP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.measure.fastprobe import canonical_payload, express_http_probe
from ..core.measure.trigger import TriggerAnalysis, analyze_trigger
from ..isps.profiles import HTTP_FILTERING_ISPS
from .common import (
    TableSpec,
    Unit,
    campaign_payload,
    fmt_cell,
    format_table,
    get_world,
)


@dataclass
class TriggerExperimentResult:
    analyses: Dict[str, TriggerAnalysis] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)

    def render(self) -> str:
        return format_table(list(CAMPAIGN.headers), _body_rows(self),
                            title=CAMPAIGN.title)


#: Campaign decomposition: one resumable unit per HTTP-censoring ISP.
CAMPAIGN = TableSpec(
    title="Section 3.4: what triggers the middleboxes",
    headers=("ISP", "TTL n-1 censored", "crafted bypass",
             "Host-only trigger", "conclusion"),
)


def _body_rows(result: "TriggerExperimentResult") -> List[List[str]]:
    body = []
    for isp, analysis in result.analyses.items():
        body.append([
            isp,
            fmt_cell(analysis.censored_at_ttl_n_minus_1),
            fmt_cell(analysis.crafted_variant_bypassing or "-"),
            fmt_cell(analysis.host_field_triggers
                     and not analysis.domain_in_path_triggers),
            "request-only" if "request-only" in analysis.conclusion
            else "inconclusive",
        ])
    for isp in result.skipped:
        body.append([isp, "-", "-", "-", "no censored path found"])
    return body


def units(isps=HTTP_FILTERING_ISPS):
    """Named measurement units for the campaign runner."""
    for isp in isps:
        yield Unit(isp, _campaign_unit(isp))


def _campaign_unit(isp: str):
    def unit_fn(world, domains):
        result = run(world, isps=(isp,))
        return campaign_payload(_body_rows(result))
    return unit_fn


def _censored_target(world, isp: str):
    client = world.client_of(isp)
    for domain in sorted(world.blocklists.http.get(isp, ())):
        dst_ip = world.hosting.ip_for(domain, region="in")
        if dst_ip is None:
            continue
        verdict = express_http_probe(world.network, client, dst_ip,
                                     canonical_payload(domain))
        if verdict.censored:
            return domain, dst_ip
    return None, None


def run(world=None, isps=HTTP_FILTERING_ISPS) -> TriggerExperimentResult:
    """Run the trigger analysis for every HTTP-censoring ISP."""
    if world is None:
        world = get_world()
    result = TriggerExperimentResult()
    for isp in isps:
        domain, dst_ip = _censored_target(world, isp)
        if domain is None:
            result.skipped.append(isp)
            continue
        result.analyses[isp] = analyze_trigger(world, isp, domain,
                                               dst_ip=dst_ip)
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
