"""Anti-censorship strategies against each middlebox family (section 5)."""

import pytest

from repro.core.evasion import (
    ClientFirewall,
    FirewallRule,
    STRATEGIES,
    attempt_strategy,
    drop_fin_rst_from,
    drop_fin_rst_with_ip_id,
    evade_all,
    strategy,
)
from repro.core.measure import canonical_payload, express_http_probe
from repro.core.vantage import VantagePoint
from repro.netsim import TCPFlags, make_tcp_packet


def censored_domains(world, isp, limit=4):
    client = world.client_of(isp)
    found = []
    for candidate in sorted(world.blocklists.http[isp]):
        ip = world.hosting.ip_for(candidate, "in")
        verdict = express_http_probe(world.network, client, ip,
                                     canonical_payload(candidate))
        if verdict.censored:
            found.append(candidate)
            if len(found) >= limit:
                break
    if not found:
        pytest.skip(f"no censored domains for {isp} in small world")
    return found


def run_strategy(world, isp, name, domain):
    vantage = VantagePoint.inside(world, isp)
    return attempt_strategy(world, vantage, domain, strategy(name))


class TestWiretapEvasion:
    """Airtel/Jio (wiretap): case fudging and FIN/RST dropping work."""

    def test_case_fudging_beats_airtel(self, small_world):
        domain = censored_domains(small_world, "airtel", 1)[0]
        attempt = run_strategy(small_world, "airtel",
                               "host-keyword-case", domain)
        assert attempt.success, attempt.detail

    def test_firewall_beats_airtel(self, small_world):
        domain = censored_domains(small_world, "airtel", 1)[0]
        attempt = run_strategy(small_world, "airtel", "drop-fin-rst", domain)
        assert attempt.success, attempt.detail

    def test_fragmentation_beats_airtel(self, small_world):
        domain = censored_domains(small_world, "airtel", 1)[0]
        attempt = run_strategy(small_world, "airtel", "fragmented-get",
                               domain)
        assert attempt.success, attempt.detail

    def test_www_prepend_beats_airtel(self, small_world):
        domain = censored_domains(small_world, "airtel", 1)[0]
        attempt = run_strategy(small_world, "airtel", "www-prepend", domain)
        assert attempt.success, attempt.detail

    def test_whitespace_does_not_beat_airtel(self, small_world):
        """Airtel's wiretap matcher tolerates whitespace."""
        domain = censored_domains(small_world, "airtel", 1)[0]
        attempt = run_strategy(small_world, "airtel",
                               "host-value-whitespace", domain)
        assert not attempt.success


class TestOvertIMEvasion:
    """Idea (overt interceptive): whitespace fudging works; case
    fudging and the client firewall do not."""

    def test_whitespace_beats_idea(self, small_world):
        domain = censored_domains(small_world, "idea", 1)[0]
        attempt = run_strategy(small_world, "idea",
                               "host-value-whitespace", domain)
        assert attempt.success, attempt.detail

    def test_tab_beats_idea(self, small_world):
        domain = censored_domains(small_world, "idea", 1)[0]
        attempt = run_strategy(small_world, "idea", "host-value-tab", domain)
        assert attempt.success, attempt.detail

    def test_trailing_space_beats_idea(self, small_world):
        domain = censored_domains(small_world, "idea", 1)[0]
        attempt = run_strategy(small_world, "idea",
                               "host-trailing-space", domain)
        assert attempt.success, attempt.detail

    def test_case_fudging_fails_against_idea(self, small_world):
        domain = censored_domains(small_world, "idea", 1)[0]
        attempt = run_strategy(small_world, "idea",
                               "host-keyword-case", domain)
        assert not attempt.success

    def test_firewall_fails_against_idea(self, small_world):
        """An in-path box eats the request; dropping injected packets
        at the client cannot conjure a response."""
        domain = censored_domains(small_world, "idea", 1)[0]
        attempt = run_strategy(small_world, "idea", "drop-fin-rst", domain)
        assert not attempt.success

    def test_www_prepend_fails_against_idea(self, small_world):
        """Idea's boxes match the www alias."""
        domain = censored_domains(small_world, "idea", 1)[0]
        attempt = run_strategy(small_world, "idea", "www-prepend", domain)
        assert not attempt.success


class TestCovertIMEvasion:
    """Vodafone (covert interceptive): the trailing-Host decoy works.

    Vodafone's coverage is so sparse (11% of paths) that the small
    world's client paths may dodge every box — itself a faithful
    property — so these tests run on the full-size world.
    """

    def test_trailing_host_beats_vodafone(self, full_world):
        domain = censored_domains(full_world, "vodafone", 1)[0]
        attempt = run_strategy(full_world, "vodafone",
                               "trailing-uncensored-host", domain)
        assert attempt.success, attempt.detail

    def test_whitespace_fails_against_vodafone(self, full_world):
        domain = censored_domains(full_world, "vodafone", 1)[0]
        attempt = run_strategy(full_world, "vodafone",
                               "host-value-whitespace", domain)
        assert not attempt.success


class TestDNSEvasion:
    def test_alternate_resolver_beats_mtnl(self, small_world):
        world = small_world
        from repro.core.measure import resolver_service_at
        deployment = world.isp("mtnl")
        service = resolver_service_at(world.network,
                                      deployment.default_resolver_ip)
        domain = sorted(service.config.blocklist)[0]
        # Only count DNS-censored sites not also HTTP-collateral-hit.
        attempt = run_strategy(world, "mtnl", "alternate-resolver", domain)
        if not attempt.success:
            assert attempt.detail in ("reset", "block page received"), \
                attempt.detail  # transit collateral, not DNS failure
        else:
            assert attempt.success


class TestEvadeAll:
    def test_every_censored_site_has_a_working_strategy(self, full_world):
        """The paper's headline claim, per ISP."""
        world = full_world
        for isp in ("airtel", "idea", "vodafone"):
            domains = censored_domains(world, isp, limit=3)
            winners = evade_all(world, isp, domains)
            for domain, winner in winners.items():
                assert winner is not None, f"{isp}/{domain} not evaded"


class TestFirewallUnit:
    def test_rule_matches_flags_and_source(self):
        rule = drop_fin_rst_from("1.2.3.4")
        fin = make_tcp_packet("1.2.3.4", "10.0.0.1", 80, 5000,
                              flags=TCPFlags.FIN | TCPFlags.ACK)
        data = make_tcp_packet("1.2.3.4", "10.0.0.1", 80, 5000,
                               flags=TCPFlags.ACK, payload=b"x")
        other = make_tcp_packet("9.9.9.9", "10.0.0.1", 80, 5000,
                                flags=TCPFlags.RST)
        assert rule.matches(fin)
        assert not rule.matches(data)
        assert not rule.matches(other)

    def test_ip_id_rule(self):
        rule = drop_fin_rst_with_ip_id(242)
        injected = make_tcp_packet("8.8.4.4", "10.0.0.1", 80, 5000,
                                   flags=TCPFlags.RST, ip_id=242)
        genuine = make_tcp_packet("8.8.4.4", "10.0.0.1", 80, 5000,
                                  flags=TCPFlags.RST, ip_id=7)
        assert rule.matches(injected)
        assert not rule.matches(genuine)

    def test_firewall_logs_drops(self):
        firewall = ClientFirewall(rules=[drop_fin_rst_with_ip_id(242)])
        packet = make_tcp_packet("8.8.4.4", "10.0.0.1", 80, 5000,
                                 flags=TCPFlags.FIN, ip_id=242)
        assert not firewall.allows(packet)
        assert len(firewall.dropped) == 1
        ok_packet = make_tcp_packet("8.8.4.4", "10.0.0.1", 80, 5000,
                                    flags=TCPFlags.ACK, payload=b"d")
        assert firewall.allows(ok_packet)

    def test_strategy_catalogue_names_unique(self):
        names = [s.name for s in STRATEGIES]
        assert len(names) == len(set(names))
