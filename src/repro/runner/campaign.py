"""Crash-safe campaign orchestration.

A :class:`Campaign` decomposes experiments into named measurement
units (each module's ``units()`` iterator), streams every unit's
result to an append-only hash-chained journal (``journal.jsonl`` in
the run directory), and renders the final tables **from the journal**
— never from in-memory state.  Consequences:

* killing the process at any point loses at most the unit in flight;
* ``resume=True`` re-runs only missing, failed, or timed-out units;
* straight and killed-and-resumed runs with the same seed produce
  byte-identical ``tables.txt`` (every payload takes the same
  JSON round trip either way, and every unit runs on a fresh world
  built from the campaign seed, never on state left over from
  earlier units).

With ``workers > 1`` independent units execute concurrently in a
process pool (each worker builds its own world from the campaign
seed); results stream back and are committed to the journal in
**canonical unit order**, so the journal — and the tables rendered
from it — are byte-identical to a serial run.  Journal records carry
only deterministic fields; per-unit wall-clock timings live in the run
directory's ``timings.jsonl`` sidecar.  See ``docs/PERFORMANCE.md``
for the determinism argument.

A cooperative :class:`~repro.runner.watchdog.Watchdog` bounds runaway
units: per-unit simulated-event budgets (deterministic) and per-unit /
per-campaign wall-clock guards (for real hangs) convert a stuck unit
into a recorded :class:`~repro.runner.errors.TimeoutDegradation` entry
and move on.

Parallel runs are **supervised**
(:class:`~repro.runner.supervise.Supervisor`): a worker lost to the OS
is respawned and its unit retried with bounded backoff; a unit that
repeatedly crashes its worker is journaled ``quarantined`` and the
campaign proceeds; ``unit_wall`` is enforced non-cooperatively by
killing the worker on deadline.  Crash/retry forensics ride the
``supervision.jsonl`` sidecar and the metrics "wall" section — never
the journal, which stays byte-identical to a serial run even when
workers are killed mid-campaign.  See "Failure modes and recovery" in
``docs/CAMPAIGNS.md``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .errors import (
    QUARANTINED,
    CampaignDeadline,
    CampaignError,
    ResumeMismatch,
    SimulatedCrash,
    TimeoutDegradation,
)
from .journal import Journal
from .parallel import (
    FatalUnitError,
    PoisonUnitError,
    UnitSettings,
    build_unit_world,
    execute_unit,
)
from .units import Unit
from .watchdog import Watchdog

#: Journal schema version (bump on incompatible record changes).
JOURNAL_VERSION = 1

#: Fault-injection knob: "crash" after durably journaling N units.
CRASH_AFTER_ENV = "REPRO_CAMPAIGN_CRASH_AFTER"

#: Unit statuses whose journal entries survive a resume untouched.
#: ``quarantined`` is durable by design: re-running a poison unit
#: would only crash the campaign's workers again.
_DURABLE_STATUSES = ("ok", "degraded", QUARANTINED)

#: Supervision event kinds → wall-half metrics counters.  These count
#: nondeterministic infrastructure events (crashes, retries, respawns)
#: so they live beside the timing gauges, never in the deterministic
#: half that byte-compares across worker counts.
_SUPERVISION_COUNTERS = {
    "worker-crash": "campaign_worker_crashes_total",
    "unit-retry": "campaign_unit_retries_total",
    "unit-quarantined": "campaign_units_quarantined_total",
    "unit-hard-timeout": "campaign_unit_hard_timeouts_total",
    "worker-spawn": "campaign_workers_respawned_total",
}


def _registry(experiments: Optional[Sequence[str]]):
    """Resolve experiment keys to modules (lazy import: no cycles)."""
    from ..experiments import EXPERIMENT_MODULES

    if experiments is None:
        return dict(EXPERIMENT_MODULES)
    registry = {}
    for key in experiments:
        if key not in EXPERIMENT_MODULES:
            raise CampaignError(
                f"unknown experiment {key!r} (choose from "
                f"{', '.join(sorted(EXPERIMENT_MODULES))})")
        registry[key] = EXPERIMENT_MODULES[key]
    return registry


@dataclasses.dataclass
class CampaignReport:
    """What a campaign run produced, plus where the durable state is."""

    run_dir: str
    journal_path: str
    tables_path: str
    tables: str
    counts: Dict[str, int]
    degradation: object  # experiments.common.Degradation
    discarded_journal_lines: int = 0
    deadline_hit: Optional[str] = None
    #: Set when a stop request (SIGTERM/SIGINT, service drain) ended
    #: the run early: the journal has no ``end`` record and the
    #: remaining units resume byte-identically later.
    drained: bool = False

    @property
    def complete(self) -> bool:
        """Every unit has a durable (ok or degraded) entry."""
        return (self.counts["ok"] + self.counts["degraded"]
                == self.counts["total"])

    def render(self) -> str:
        counts = self.counts
        lines = [
            f"campaign run: {self.run_dir}",
            f"journal: {self.journal_path}",
            f"units: {counts['total']} total — {counts['ok']} ok, "
            f"{counts['degraded']} degraded, {counts['timeout']} timeout, "
            f"{counts['failed']} failed, "
            f"{counts['quarantined']} quarantined, "
            f"{counts['missing']} not run",
        ]
        if self.discarded_journal_lines:
            lines.append(f"journal: discarded "
                         f"{self.discarded_journal_lines} corrupt tail "
                         f"line(s) on resume")
        if self.deadline_hit:
            lines.append(f"deadline: {self.deadline_hit}")
        if self.drained:
            lines.append(f"drained: stopped after the last committed "
                         f"unit — continue with "
                         f"repro campaign --resume {self.run_dir}")
        extra = self.degradation.describe()
        if extra:
            lines.append(extra)
        return "\n".join(lines) + "\n\n" + self.tables


class Campaign:
    """One resumable, deadline-guarded sweep over experiment units."""

    def __init__(self, experiments: Optional[Sequence[str]] = None,
                 seed: int = 1808, scale: float = 0.25,
                 run_dir: str = "campaign-run", resume: bool = False,
                 fraction: Optional[float] = None,
                 unit_steps: Optional[int] = None,
                 unit_wall: Optional[float] = None,
                 deadline: Optional[float] = None,
                 loss: float = 0.0, fault_seed: int = 0,
                 retries: Optional[int] = None,
                 crash_after: Optional[int] = None,
                 specs: Optional[Mapping[str, object]] = None,
                 echo_journal: bool = False,
                 workers: int = 1,
                 trace: bool = False,
                 max_worker_crashes: int = 2,
                 hard_grace: float = 2.0,
                 memory_limit_mb: Optional[int] = None,
                 stop_event=None,
                 supervised: bool = False,
                 warm_worlds: bool = False,
                 on_event: Optional[Callable[[Dict], None]] = None,
                 adopt_settings: Optional[Sequence[str]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        from ..experiments.common import bench_fraction

        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        if workers > 1 and specs is not None:
            raise CampaignError(
                "workers > 1 requires registry experiments (worker "
                "processes re-resolve units by name; ad-hoc spec "
                "modules cannot cross the process boundary)")
        self.workers = workers
        self.registry = (dict(specs) if specs is not None
                         else _registry(experiments))
        #: On resume with no explicit experiment list, adopt the
        #: journal's recorded list rather than demanding a retype.
        self._adopt_experiments = specs is None and experiments is None
        self.seed = seed
        self.scale = scale
        self.fraction = bench_fraction() if fraction is None else fraction
        self.run_dir = run_dir
        self.resume = resume
        self.unit_steps = unit_steps
        self.loss = loss
        self.fault_seed = fault_seed
        self.retries = retries
        if crash_after is None:
            raw = os.environ.get(CRASH_AFTER_ENV)
            crash_after = int(raw) if raw else None
        self.crash_after = crash_after
        self.echo_journal = echo_journal
        self.trace = trace
        if max_worker_crashes < 1:
            raise CampaignError(f"max_worker_crashes must be >= 1, "
                                f"got {max_worker_crashes}")
        self.max_worker_crashes = max_worker_crashes
        self.hard_grace = hard_grace
        self.memory_limit_mb = memory_limit_mb
        #: Graceful-drain hook: any object with ``is_set()`` (e.g. a
        #: ``threading.Event``).  Once set, the campaign finishes the
        #: unit in flight, commits it, and returns with
        #: ``report.drained`` — no ``end`` record is journaled, so a
        #: later ``--resume`` produces bytes identical to an
        #: uninterrupted run.
        self.stop_event = stop_event
        #: Route even ``workers=1`` through the supervised pool: unit
        #: execution leaves this process entirely.  The service needs
        #: this — concurrent in-process campaigns would stomp the
        #: process-global qid/port streams mid-unit.
        self.supervised = supervised
        self.warm_worlds = warm_worlds
        #: Live observability: called with small lifecycle dicts
        #: (``campaign-start`` / ``unit-committed`` / ``campaign-end``
        #: plus every supervision event).  Best-effort — a failing sink
        #: is counted and reported, never allowed to abort the run.
        self.on_event = on_event
        #: Meta keys to adopt from the journal on resume instead of
        #: demanding a retype (the same courtesy ``_adopt_experiments``
        #: extends to the experiment list).  The CLI passes every
        #: setting the user did *not* explicitly flag, which is what
        #: makes the printed ``repro campaign --resume <run_dir>``
        #: hint work verbatim.  Explicitly-flagged values still go
        #: through :meth:`_check_meta`, so a genuine conflict (e.g.
        #: ``--seed 9`` against a seed-7 journal) still errors.
        self._adopt_settings = frozenset(adopt_settings or ())
        self._unit_wall_param = unit_wall
        self._deadline_param = deadline
        self._clock = clock
        self.watchdog = Watchdog(unit_steps=unit_steps, unit_wall=unit_wall,
                                 campaign_wall=deadline, clock=clock)

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.run_dir, "journal.jsonl")

    @property
    def tables_path(self) -> str:
        return os.path.join(self.run_dir, "tables.txt")

    def _meta(self) -> Dict:
        return {
            "type": "meta",
            "version": JOURNAL_VERSION,
            "seed": self.seed,
            "scale": self.scale,
            "fraction": self.fraction,
            "experiments": list(self.registry),
            "loss": self.loss,
            "fault_seed": self.fault_seed,
            "retries": self.retries,
            "unit_steps": self.unit_steps,
            "memory_limit": self.memory_limit_mb,
        }

    def _open_journal(self) -> Tuple[Journal, List[Dict], int]:
        if self.resume:
            journal, records, discarded = Journal.resume(self.journal_path)
            if not records or records[0].get("type") != "meta":
                raise ResumeMismatch(
                    f"{self.journal_path} has no readable meta record")
            if self._adopt_experiments:
                self.registry = _registry(
                    records[0].get("experiments") or None)
            self._adopt_recorded(records[0])
            self._check_meta(records[0])
            return journal, records, discarded
        if os.path.exists(self.journal_path):
            raise CampaignError(
                f"{self.journal_path} already exists — continue it with "
                f"repro campaign --resume {self.run_dir}, or choose a "
                f"fresh run directory")
        journal = Journal.create(self.journal_path)
        self._append(journal, self._meta())
        return journal, [], 0

    #: meta key → constructor attribute, for adopt-on-resume.
    _ADOPTABLE = {
        "seed": "seed", "scale": "scale", "fraction": "fraction",
        "loss": "loss", "fault_seed": "fault_seed",
        "retries": "retries", "unit_steps": "unit_steps",
        "memory_limit": "memory_limit_mb",
    }

    def _adopt_recorded(self, recorded: Dict) -> None:
        """Take un-flagged settings from the journal meta record."""
        adopted_steps = False
        for key in self._adopt_settings:
            attr = self._ADOPTABLE.get(key)
            if attr is None or key not in recorded:
                continue
            if getattr(self, attr) != recorded[key]:
                setattr(self, attr, recorded[key])
                adopted_steps = adopted_steps or key == "unit_steps"
        if adopted_steps:
            # The watchdog captured unit_steps at construction.
            self.watchdog = Watchdog(
                unit_steps=self.unit_steps,
                unit_wall=self._unit_wall_param,
                campaign_wall=self._deadline_param, clock=self._clock)

    def _check_meta(self, recorded: Dict) -> None:
        expected = self._meta()
        mismatched = [
            key for key in ("version", "seed", "scale", "fraction",
                            "experiments", "loss", "fault_seed", "retries",
                            "unit_steps", "memory_limit")
            if recorded.get(key) != expected[key]
        ]
        if mismatched:
            detail = ", ".join(
                f"{key}: journal={recorded.get(key)!r} "
                f"requested={expected[key]!r}" for key in mismatched)
            raise ResumeMismatch(
                f"cannot resume {self.journal_path}: {detail}")

    def _append(self, journal: Journal, record: Dict) -> Dict:
        record = journal.append(record)
        if self.echo_journal:
            from .journal import canonical_json

            print(canonical_json(record))
        return record

    # ------------------------------------------------------------------
    # Unit execution
    # ------------------------------------------------------------------

    def _settings(self) -> UnitSettings:
        """The picklable execution settings shared with workers."""
        return UnitSettings(
            seed=self.seed, scale=self.scale, fraction=self.fraction,
            loss=self.loss, fault_seed=self.fault_seed,
            retries=self.retries, unit_steps=self.unit_steps,
            unit_wall=self.watchdog.unit_wall,
            trace=self.trace,
            memory_limit_mb=self.memory_limit_mb,
            warm_worlds=self.warm_worlds,
        )

    def _fresh_world(self):
        """A pristine world per unit: resume-order independence."""
        return build_unit_world(self._settings())

    def _sidecar_error(self, where: str, exc: BaseException) -> None:
        """A diagnostics channel failed: count it and say so on stderr.

        Sidecar writes (timings, trace, metrics, the fatal-crash note)
        are best-effort — they must never abort a campaign — but a
        silent ``except`` would make supervision invisible exactly
        when the infrastructure is misbehaving.  So every swallowed
        failure increments ``campaign_sidecar_errors_total`` in the
        wall metrics and leaves one line on stderr.
        """
        try:
            self._metrics_wall.counter(
                "campaign_sidecar_errors_total", where=where).inc()
        except Exception:  # pragma: no cover - metrics not set up yet
            pass
        print(f"repro: warning: {where} sidecar write failed: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)

    def _stop_requested(self) -> bool:
        """Has a graceful drain been requested (signal/service stop)?"""
        return self.stop_event is not None and self.stop_event.is_set()

    def _emit_live(self, kind: str, **fields) -> None:
        """Deliver one lifecycle event to the live sink, best-effort."""
        if self.on_event is None:
            return
        event = {"kind": kind}
        event.update(fields)
        try:
            self.on_event(event)
        except Exception as exc:
            self._sidecar_error("live", exc)

    def _journal_failed_fatal(self, record: Dict) -> None:
        """Best-effort durable note of a fatal crash (then re-raise)."""
        try:
            self._append(self._journal, record)
        except Exception as exc:
            self._sidecar_error("fatal-journal", exc)

    def _commit(self, journal: Journal, experiment: str, unit: Unit,
                record: Dict, wall: float,
                extras: Optional[Dict] = None,
                attempts: int = 1,
                worker: Optional[int] = None) -> None:
        """Durably journal one unit record; observability in sidecars.

        The journal record is untouched by observability — metrics
        merge into the in-memory registries (flushed to
        ``metrics.json`` at the end) and trace lines append to
        ``trace.jsonl``.  Because this runs in canonical commit order
        for every worker count, both sidecars byte-compare between
        serial and ``--workers N`` runs (wall timings excepted — they
        live in ``timings.jsonl`` and the metrics "wall" section).
        """
        from ..obs.metrics import WALL_BUCKETS

        self._append(journal, record)
        self._emit_live("unit-committed", experiment=experiment,
                        unit=unit.name, status=record.get("status"),
                        wall=round(wall, 3), attempts=attempts)
        try:
            with open(os.path.join(self.run_dir, "timings.jsonl"),
                      "a", encoding="utf-8") as fh:
                fh.write(json.dumps({
                    "experiment": experiment, "unit": unit.name,
                    "status": record.get("status"),
                    "wall": round(wall, 3),
                    "attempts": attempts,
                    "worker": worker,
                }) + "\n")
        except OSError as exc:
            self._sidecar_error("timings", exc)
        self._metrics_wall.histogram(
            "campaign_unit_wall_seconds", WALL_BUCKETS,
            experiment=experiment).observe(wall)
        self._wall_total += wall
        self._steps_total += record.get("steps") or 0
        if extras is None:
            return
        snapshot = extras.get("metrics")
        if snapshot is not None:
            self._metrics_det.merge(snapshot)
        lines = extras.get("trace")
        if lines:
            try:
                with open(os.path.join(self.run_dir, "trace.jsonl"),
                          "a", encoding="utf-8") as fh:
                    fh.write("\n".join(lines) + "\n")
            except OSError as exc:
                self._sidecar_error("trace", exc)

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------

    def run(self) -> CampaignReport:
        from ..obs.metrics import MetricsRegistry
        from ..obs.trace import TraceBus

        os.makedirs(self.run_dir, exist_ok=True)
        journal, prior, discarded = self._open_journal()
        self._journal = journal
        self._metrics_det = MetricsRegistry()
        self._metrics_wall = MetricsRegistry()
        self._wall_total = 0.0
        self._steps_total = 0
        #: Supervision side channel: crash/retry/quarantine forensics
        #: are nondeterministic, so they stream to their own
        #: ``supervision.jsonl`` sidecar and the wall metrics — never
        #: ``trace.jsonl``, which byte-compares across worker counts.
        self._supervision_fh = None
        self._supervision_bus = TraceBus()
        self._supervision_bus.subscribe(self._on_supervision_event)
        units_by_exp: Dict[str, List[Unit]] = {
            key: list(module.units())
            for key, module in self.registry.items()
        }
        durable = {
            (rec["experiment"], rec["unit"])
            for rec in prior
            if rec.get("type") == "unit"
            and rec.get("status") in _DURABLE_STATUSES
        }
        resumed = 0
        #: Canonical execution/commit order: registry order, then each
        #: experiment's own unit order — identical for every worker
        #: count, which is what makes the journals byte-compare.
        pending: List[Tuple[str, Unit]] = []
        for key, units in units_by_exp.items():
            for unit in units:
                if (key, unit.name) in durable:
                    resumed += 1
                else:
                    pending.append((key, unit))
        self.watchdog.start_campaign()
        self._drained = False
        self._emit_live("campaign-start", run_dir=self.run_dir,
                        pending=len(pending), resumed=resumed)
        try:
            if self.workers > 1 or self.supervised:
                deadline_hit = self._run_parallel(journal, pending)
            else:
                deadline_hit = self._run_serial(journal, pending)
            report = self._finish(units_by_exp, resumed, discarded,
                                  deadline_hit)
            if self._drained:
                # No end record: the journal stays open so a resume
                # appends the missing units and finishes with bytes
                # identical to an uninterrupted run.
                report = dataclasses.replace(report, drained=True)
            else:
                self._append(journal, {
                    "type": "end",
                    "status": "deadline" if deadline_hit
                    else ("complete" if report.complete else "partial"),
                })
            self._emit_live(
                "campaign-end", run_dir=self.run_dir,
                complete=report.complete, drained=report.drained,
                counts=dict(report.counts))
        finally:
            if self._supervision_fh is not None:
                try:
                    self._supervision_fh.close()
                except OSError:  # pragma: no cover - teardown only
                    pass
                self._supervision_fh = None
        return report

    def _on_supervision_event(self, event: Dict) -> None:
        """Sink for supervision events: count, stream to disk, and
        forward to the live sink (tagged, so a service can tell
        infrastructure forensics from journal lifecycle)."""
        from ..obs.trace import event_json

        counter = _SUPERVISION_COUNTERS.get(event.get("kind"))
        if counter is not None:
            self._metrics_wall.counter(counter).inc()
        if self.on_event is not None:
            self._emit_live("supervision", event=dict(event))
        try:
            if self._supervision_fh is None:
                self._supervision_fh = open(
                    os.path.join(self.run_dir, "supervision.jsonl"),
                    "a", encoding="utf-8")
            self._supervision_fh.write(event_json(event) + "\n")
            self._supervision_fh.flush()
        except OSError as exc:
            self._sidecar_error("supervision", exc)

    def _check_deadline(self, deadline_hit: Optional[str]
                        ) -> Optional[str]:
        """Between units/commits: has the campaign budget expired?"""
        if deadline_hit is None:
            try:
                self.watchdog.check_campaign()
            except CampaignDeadline as exc:
                return str(exc)
        return deadline_hit

    def _crash_if_injected(self, executed: int) -> None:
        if self.crash_after is not None and executed >= self.crash_after:
            raise SimulatedCrash(
                f"injected crash after {executed} journaled unit(s) — "
                f"resume with repro campaign --resume {self.run_dir}")

    def _run_serial(self, journal: Journal,
                    pending: List[Tuple[str, Unit]]) -> Optional[str]:
        """Seed behaviour: one unit at a time, in canonical order.

        Poison failures (``MemoryError``) get the same retry-then-
        quarantine treatment the supervisor applies to worker deaths,
        so a serial run journals the same deterministic quarantine
        record a parallel run does.
        """
        from .supervise import quarantine_record

        settings = self._settings()
        executed = 0
        deadline_hit: Optional[str] = None
        for key, unit in pending:
            if self._stop_requested():
                self._drained = True
                break
            deadline_hit = self._check_deadline(deadline_hit)
            if deadline_hit is not None:
                continue
            unit_key = f"{key}/{unit.name}"
            crashes = 0
            start = time.monotonic()
            while True:
                try:
                    record, wall, extras = execute_unit(
                        settings, key, unit, self.watchdog)
                    attempts = crashes + 1
                except FatalUnitError as exc:
                    self._journal_failed_fatal(exc.record)
                    raise exc.original
                except PoisonUnitError as exc:
                    crashes += 1
                    self._supervision_bus.emit(
                        "worker-crash", self.watchdog.campaign_elapsed(),
                        unit=unit_key, attempt=crashes,
                        reason=exc.record["error"]["reason"])
                    if crashes >= self.max_worker_crashes:
                        record = quarantine_record(key, unit.name,
                                                   crashes)
                        wall = time.monotonic() - start
                        extras = None
                        attempts = crashes
                        self._supervision_bus.emit(
                            "unit-quarantined",
                            self.watchdog.campaign_elapsed(),
                            unit=unit_key, crashes=crashes)
                        break
                    self._supervision_bus.emit(
                        "unit-retry", self.watchdog.campaign_elapsed(),
                        unit=unit_key, attempt=crashes + 1, delay=0.0)
                    continue
                break
            self._commit(journal, key, unit, record, wall, extras,
                         attempts=attempts)
            executed += 1
            self._crash_if_injected(executed)
        return deadline_hit

    def _run_parallel(self, journal: Journal,
                      pending: List[Tuple[str, Unit]]) -> Optional[str]:
        """Fan units out to a supervised worker pool; commit in
        canonical order.

        Dispatch is free-running (workers pick up units as slots open)
        but :meth:`Supervisor.run` yields outcomes in submission
        order, so the journal is written exactly as a serial run
        writes it — including after worker crashes, retries,
        quarantines and hard deadline kills, none of which touch the
        record bytes.  A hit deadline stops committing — undelivered
        results are discarded, leaving those units missing and
        resumable, just as the serial loop leaves them un-run.

        A stop request (``stop_event``) drains instead: the supervisor
        stops dispatching, in-flight units finish, and those still in
        canonical commit order are journaled before the loop ends —
        everything else stays missing and resumable.
        """
        from .supervise import Supervisor

        executed = 0
        deadline_hit: Optional[str] = None
        supervisor = Supervisor(
            self._settings(), self.workers,
            unit_wall=self.watchdog.unit_wall,
            max_crashes=self.max_worker_crashes,
            hard_grace=self.hard_grace,
            events=self._supervision_bus,
            stop_check=self._stop_requested)
        units = {(key, unit.name): unit for key, unit in pending}
        outcomes = supervisor.run(
            [(key, unit.name) for key, unit in pending])
        try:
            for outcome in outcomes:
                deadline_hit = self._check_deadline(deadline_hit)
                if deadline_hit is not None:
                    break
                if outcome.kind == "fatal":
                    self._journal_failed_fatal(outcome.record)
                    raise CampaignError(
                        f"fatal error in unit {outcome.experiment}:"
                        f"{outcome.unit_name}: "
                        f"{outcome.record['error']['reason']}")
                unit = units[(outcome.experiment, outcome.unit_name)]
                self._commit(journal, outcome.experiment, unit,
                             outcome.record, outcome.wall,
                             outcome.extras, attempts=outcome.attempts,
                             worker=outcome.worker)
                executed += 1
                self._crash_if_injected(executed)
        finally:
            outcomes.close()
        if (self._stop_requested() and deadline_hit is None
                and executed < len(pending)):
            # The supervisor drained with units still uncommitted:
            # they stay missing, i.e. resumable.  (A stop that landed
            # after the last commit drained nothing — the campaign is
            # simply complete.)
            self._drained = True
        return deadline_hit

    # ------------------------------------------------------------------
    # Assembly (always from the journal — the durable source of truth)
    # ------------------------------------------------------------------

    def _finish(self, units_by_exp, resumed: int, discarded: int,
                deadline_hit: Optional[str]) -> CampaignReport:
        from ..experiments.common import Degradation

        records, _ = Journal.load(self.journal_path)
        latest: Dict[Tuple[str, str], Dict] = {}
        for rec in records:
            if rec.get("type") == "unit":
                latest[(rec["experiment"], rec["unit"])] = rec

        counts = {"total": 0, "ok": 0, "degraded": 0, "timeout": 0,
                  "failed": 0, "quarantined": 0, "missing": 0}
        degradation = Degradation(resumed=resumed)
        for key, units in units_by_exp.items():
            for unit in units:
                counts["total"] += 1
                rec = latest.get((key, unit.name))
                if rec is None:
                    counts["missing"] += 1
                    continue
                counts[rec["status"]] += 1
                if rec["status"] == "timeout":
                    degradation.record_timeout(TimeoutDegradation(
                        unit=f"{key}:{unit.name}",
                        kind=rec["timeout"]["kind"],
                        detail=rec["timeout"]["detail"]))
                elif rec["status"] == "failed":
                    degradation.record_error(f"{key}:{unit.name}",
                                             rec["error"]["reason"])
                elif rec["status"] == QUARANTINED:
                    degradation.record_quarantine(
                        f"{key}:{unit.name}", rec["error"]["reason"])
                else:
                    payload = rec["payload"]
                    degradation.retries += payload.get("retries", 0)
                    for unit_name, reason in payload.get("errors", ()):
                        degradation.record_error(unit_name, reason)

        tables = self._assemble(units_by_exp, latest)
        from .atomicio import replace_text

        replace_text(self.tables_path, tables)
        self._write_metrics(counts)
        return CampaignReport(
            run_dir=self.run_dir,
            journal_path=self.journal_path,
            tables_path=self.tables_path,
            tables=tables,
            counts=counts,
            degradation=degradation,
            discarded_journal_lines=discarded,
            deadline_hit=deadline_hit,
        )

    def _write_metrics(self, counts: Dict[str, int]) -> None:
        """Flush the run's metrics to the ``metrics.json`` sidecar.

        Split into a ``deterministic`` section (identical between
        serial and ``--workers N`` runs of the same campaign) and a
        ``wall`` section (timing-derived, varies run to run).  Covers
        the units executed *by this invocation* — a resumed campaign's
        metrics describe the resumed units only.
        """
        for status, count in sorted(counts.items()):
            if status != "total" and count:
                self._metrics_det.counter(
                    "campaign_units_total", status=status).inc(count)
        if self._wall_total > 0:
            self._metrics_wall.gauge("campaign_wall_seconds").set(
                round(self._wall_total, 3))
            self._metrics_wall.gauge("campaign_events_per_second").set(
                round(self._steps_total / self._wall_total, 1))
        from .atomicio import replace_json

        try:
            replace_json(os.path.join(self.run_dir, "metrics.json"), {
                "deterministic": self._metrics_det.snapshot(),
                "wall": self._metrics_wall.snapshot(),
            })
        except OSError as exc:
            self._sidecar_error("metrics", exc)

    def _assemble(self, units_by_exp, latest) -> str:
        from ..experiments.common import format_table

        sections: List[str] = []
        for key, module in self.registry.items():
            spec = module.CAMPAIGN
            headers = list(spec.headers)
            rows: List[List] = []
            notes: List[str] = []
            for unit in units_by_exp[key]:
                rec = latest.get((key, unit.name))
                if rec is None:
                    rows.append(self._pad([unit.name, "(not run)"],
                                          headers))
                elif rec["status"] == "timeout":
                    rows.append(self._pad(
                        [unit.name,
                         f"(timeout: {rec['timeout']['detail']})"],
                        headers))
                elif rec["status"] == "failed":
                    rows.append(self._pad(
                        [unit.name,
                         f"(failed: {rec['error']['reason']})"],
                        headers))
                elif rec["status"] == QUARANTINED:
                    rows.append(self._pad(
                        [unit.name,
                         f"(quarantined: {rec['error']['reason']})"],
                        headers))
                else:
                    rows.extend(rec["payload"]["rows"])
                    notes.extend(rec["payload"].get("notes", ()))
            section = format_table(headers, rows, title=spec.title)
            if spec.footer:
                section += "\n" + spec.footer
            for note in notes:
                section += "\n" + note
            sections.append(section)
        return "\n\n".join(sections) + "\n"

    @staticmethod
    def _pad(row: List, headers: List[str]) -> List:
        return row + ["-"] * (len(headers) - len(row))
