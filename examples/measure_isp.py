#!/usr/bin/env python3
"""The full measurement pipeline against one ISP, end to end.

Reproduces the paper's methodology for a single network operator:

1. detect which PBWs are censored (authors' semi-automatic detector);
2. determine the mechanism (DNS heuristics, TCP/IP test, HTTP);
3. locate the middlebox with Iterative Network Tracing;
4. classify it (wiretap vs interceptive, overt vs covert) via the
   controlled-remote-server experiment;
5. probe statefulness;
6. measure coverage and consistency.

Run:  python examples/measure_isp.py [isp] [--scale 0.2]
      (isp defaults to "idea"; try airtel, vodafone, jio, mtnl)
"""

import argparse

from repro.core.measure import (
    canonical_payload,
    classify_middlebox,
    detect_dns_filtering,
    detect_tcpip_filtering,
    express_http_probe,
    find_controlled_target,
    http_iterative_trace,
    measure_coverage_inside,
    probe_statefulness,
    run_detector,
)
from repro.core.vantage import VantagePoint
from repro.isps import PROFILES, build_world


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("isp", nargs="?", default="idea",
                        choices=sorted(PROFILES))
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=1808)
    parser.add_argument("--sample", type=int, default=40,
                        help="PBWs to run the detector over")
    args = parser.parse_args()

    print(f"Building world (seed={args.seed}, scale={args.scale})...")
    world = build_world(seed=args.seed, scale=args.scale)
    isp = args.isp
    client = world.client_of(isp)

    # Step 1: detection — candidate list biased toward this ISP's
    # likely targets plus a clean control sample.
    candidates = sorted(world.blocklists.http.get(isp, ()))[:args.sample]
    clean = [s.domain for s in world.corpus
             if s.domain not in world.blocklists.all_blocked_domains()
             ][:args.sample // 4]
    print(f"\n[1] Running the semi-automatic detector over "
          f"{len(candidates) + len(clean)} sites...")
    detector = run_detector(world, isp, candidates + clean)
    censored = sorted(detector.censored_domains())
    print(f"    censored: {len(censored)}  "
          f"(auto-flagged {detector.flagged_count}, of which "
          f"{detector.cleared_after_manual} cleared by manual check)")
    for domain in censored[:5]:
        print(f"      {domain}: {detector.outcomes[domain].notes}")

    # Step 2: mechanism checks.
    print("\n[2] Mechanism checks...")
    dns_run = detect_dns_filtering(world, isp,
                                   (candidates + clean)[:args.sample])
    print(f"    DNS filtering: {len(dns_run.censored_domains())} domains"
          f" (poison addresses: {sorted(dns_run.poison_addresses())})")
    tcp_report = detect_tcpip_filtering(world, isp, candidates[:6])
    print(f"    TCP/IP filtering: "
          f"{'YES' if tcp_report.any_filtering else 'none'}")

    http_censored = [d for d in censored
                     if detector.outcomes[d].mechanism == "http"]
    if not http_censored:
        print("\nNo HTTP censorship observed from this client; done.")
        return

    # Step 3: locate the middlebox.
    domain = http_censored[0]
    dst_ip = world.hosting.ip_for(domain, "in")
    print(f"\n[3] Iterative Network Tracing toward {domain} ({dst_ip})...")
    trace = http_iterative_trace(world, client, dst_ip, domain)
    print(f"    traceroute hops: "
          f"{[h or '*' for h in trace.traceroute.hops]}")
    print(f"    censorship first appears at TTL {trace.censor_hop} "
          f"(router: {trace.censor_hop_ip or 'anonymized *'})")

    # Step 4: classify via a controlled remote server.
    print("\n[4] Controlled-remote-server classification...")
    server, ctl_domain = find_controlled_target(
        world, isp, sorted(world.blocklists.http.get(isp, ())))
    if server is None:
        print("    no controlled host sits behind a box; skipping")
    else:
        classification = classify_middlebox(world, isp, ctl_domain,
                                            server_host=server)
        print(f"    kind: {classification.kind} "
              f"({'overt' if classification.overt else 'covert'})")
        print(f"    server saw the request: "
              f"{classification.server_saw_request}")
        print(f"    server got foreign-seq RST: "
              f"{classification.server_got_foreign_rst}")
        if classification.fixed_ip_id is not None:
            print(f"    fixed IP-ID on injected packets: "
                  f"{classification.fixed_ip_id}")

        # Step 5: statefulness.
        print("\n[5] Statefulness probes...")
        report = probe_statefulness(world, isp, ctl_domain, server.ip)
        print(f"    stateful (handshake-gated): {report.stateful}")

    # Step 6: coverage & consistency.
    print("\n[6] Coverage/consistency campaign (Alexa destinations)...")
    campaign = measure_coverage_inside(world, isp)
    print(f"    poisoned paths: {campaign.n_poisoned}/{campaign.n_paths} "
          f"(coverage {campaign.coverage:.1%})")
    print(f"    consistency: {campaign.consistency:.1%}")
    print(f"    websites blocked on >=1 path: "
          f"{len(campaign.blocked_union())}")


if __name__ == "__main__":
    main()
