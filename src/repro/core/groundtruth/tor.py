"""The Tor control channel.

The paper uses Tor circuits ending in non-censorious countries as its
uncensored ground-truth channel: resolving PBWs, fetching their
contents, and attempting TCP handshakes "from outside".  Here a
:class:`TorCircuit` performs those operations from the simulated exit
host, whose paths never cross Indian censorship infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ...dnssim.client import dns_lookup
from ...httpsim.client import FetchResult, http_fetch
from ...httpsim.message import GetRequestSpec
from ...netsim.tcp import TCPApp


@dataclass
class TorLookup:
    """A resolution through the circuit."""

    domain: str
    ips: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.ips)


class TorCircuit:
    """An uncensored fetch/resolve channel through a foreign exit."""

    def __init__(self, world) -> None:
        self.world = world
        self.exit_host = world.tor_exit
        # Exit-side resolution goes through a public resolver in the
        # exit's (non-censorious) region.
        self.resolver_ip = world.google_dns.ip
        self._dns_cache = {}

    def resolve(self, domain: str) -> TorLookup:
        """Resolve *domain* as the exit sees it (cached per domain)."""
        cached = self._dns_cache.get(domain)
        if cached is not None:
            return cached
        result = dns_lookup(self.world.network, self.exit_host,
                            self.resolver_ip, domain)
        lookup = TorLookup(domain=domain, ips=list(result.ips))
        self._dns_cache[domain] = lookup
        return lookup

    def fetch(self, domain: str, path: str = "/",
              ip: Optional[str] = None) -> Optional[FetchResult]:
        """Fetch ``http://domain/path`` through the circuit.

        Returns None when the domain does not resolve.  Passing ``ip``
        pins the connection to a specific address — the trick the
        authors use to check whether a suspicious resolved address
        really serves the site (section 3.2-II).
        """
        if ip is None:
            lookup = self.resolve(domain)
            if not lookup.ok:
                return None
            ip = lookup.ips[0]
        request = GetRequestSpec(domain=domain, path=path).to_bytes()
        return http_fetch(self.world.network, self.exit_host, ip, request)

    def tcp_connect(self, ip: str, port: int = 80,
                    timeout: float = 4.0) -> bool:
        """Attempt a 3-way handshake from the exit; True on success."""
        outcome = {"connected": False, "done": False}

        class Probe(TCPApp):
            def on_connected(self, conn):
                outcome["connected"] = True
                outcome["done"] = True
                conn.abort()

            def on_closed(self, conn, reason):
                outcome["done"] = True

        network = self.world.network
        self.exit_host.stack.connect(ip, port, Probe())
        deadline = network.now + timeout
        while not outcome["done"] and network.now < deadline:
            if network.pending_events == 0:
                break
            network.run(until=min(deadline, network.now + 0.25))
        return outcome["connected"]
