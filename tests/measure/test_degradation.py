"""Graceful degradation: headline experiments on a lossy world.

With a fixed fault seed and 5% per-link loss every headline experiment
must complete without exceptions, report any retried/degraded probes,
and stay within a small tolerance of its zero-loss metrics.  A final
regression shows the same fault schedule wrecks the seed repo's
single-shot (``NO_HARDENING``) clients — proof the hardening is doing
the work.
"""

import pytest

from repro.dnssim import dns_lookup
from repro.experiments import (
    fig2_dns,
    fig5_http,
    table1_ooni,
    table2_http,
    table3_collateral,
)
from repro.httpsim import fetch_url
from repro.isps import build_world
from repro.netsim import NO_HARDENING, FaultPlan

LOSS = 0.05
FAULT_SEED = 42
TOLERANCE = 0.05
SCALE = 0.15
SEED = 1808


def make_faulty_world(fault_seed=FAULT_SEED, hardening=None):
    world = build_world(seed=SEED, scale=SCALE)
    world.install_faults(FaultPlan.uniform_loss(LOSS, seed=fault_seed),
                         hardening=hardening)
    return world


@pytest.fixture(scope="module")
def faulty_world():
    return make_faulty_world()


@pytest.fixture(scope="module")
def sample(small_world):
    return small_world.corpus.domains()[:60]


class TestHeadlineExperimentsUnderLoss:
    """Each experiment completes and lands within TOLERANCE of the
    zero-loss run on an identically-built world."""

    def test_table1_ooni(self, small_world, faulty_world, sample):
        clean = table1_ooni.run(small_world, sample, isps=("idea",))
        lossy = table1_ooni.run(faulty_world, sample, isps=("idea",))
        assert "Table 1" in lossy.render()
        for attr in ("total", "http"):
            clean_pr = getattr(clean.row("idea"), attr).as_tuple()
            lossy_pr = getattr(lossy.row("idea"), attr).as_tuple()
            for got, want in zip(lossy_pr, clean_pr):
                assert abs(got - want) <= TOLERANCE
        # The campaign reports what the faults cost it.
        assert lossy.row("idea").retries > 0
        assert "degraded" in lossy.render()
        assert clean.row("idea").retries == 0

    def test_table2_http(self, small_world, faulty_world, sample):
        clean = table2_http.run(small_world, sample, isps=("idea",),
                                classify=False)
        lossy = table2_http.run(faulty_world, sample, isps=("idea",),
                                classify=False)
        assert not lossy.degradation.partial
        assert abs(lossy.row("idea").inside_coverage
                   - clean.row("idea").inside_coverage) <= TOLERANCE
        assert abs(lossy.row("idea").outside_coverage
                   - clean.row("idea").outside_coverage) <= TOLERANCE

    def test_fig2_dns(self, small_world, faulty_world):
        clean = fig2_dns.run(small_world, isps=("bsnl",))
        lossy = fig2_dns.run(faulty_world, isps=("bsnl",))
        assert not lossy.degradation.partial
        assert abs(lossy.coverage("bsnl")
                   - clean.coverage("bsnl")) <= TOLERANCE

    def test_fig5_http(self, small_world, faulty_world, sample):
        clean = fig5_http.run(small_world, sample, isps=("idea",))
        lossy = fig5_http.run(faulty_world, sample, isps=("idea",))
        assert not lossy.degradation.partial
        assert abs(lossy.consistency("idea")
                   - clean.consistency("idea")) <= TOLERANCE

    def test_table3_collateral(self, small_world, faulty_world):
        domains = small_world.corpus.domains()
        clean = table3_collateral.run(small_world, domains, stubs=("siti",))
        lossy = table3_collateral.run(faulty_world, domains, stubs=("siti",))
        assert not lossy.degradation.partial
        assert (lossy.dominant_neighbour("siti")
                == clean.dominant_neighbour("siti"))


class TestSeededDeterminism:
    """Satellite: the fault schedule is a pure function of the seed."""

    def run_once(self, fault_seed, domains):
        world = make_faulty_world(fault_seed=fault_seed)
        result = table1_ooni.run(world, domains, isps=("idea",))
        return result

    def test_same_fault_seed_byte_identical(self, sample):
        domains = sample[:20]
        first = self.run_once(FAULT_SEED, domains)
        second = self.run_once(FAULT_SEED, domains)
        assert first.render() == second.render()
        assert first.row("idea").retries == second.row("idea").retries

    def test_different_fault_seed_within_tolerance(self, sample):
        """A different schedule shifts which probes retry, but hardened
        clients keep the metrics inside the documented tolerance."""
        domains = sample[:20]
        first = self.run_once(FAULT_SEED, domains)
        other = self.run_once(FAULT_SEED + 1, domains)
        for got, want in zip(other.row("idea").total.as_tuple(),
                             first.row("idea").total.as_tuple()):
            assert abs(got - want) <= TOLERANCE


class TestUnhardenedRegression:
    """Zero-retry clients under the same faults demonstrably fail."""

    N_DOMAINS = 15

    def probe_successes(self, world):
        """Resolve-and-fetch wins for the first corpus domains, from a
        client in a non-censoring ISP.  The PBW corpus deliberately
        contains dead/parked sites, so wins are compared against a
        clean-world baseline rather than a perfect score."""
        client = world.client_of("nkn")
        resolver_ip = world.isp("nkn").default_resolver_ip
        wins = 0
        for domain in world.corpus.domains()[:self.N_DOMAINS]:
            lookup = dns_lookup(world.network, client, resolver_ip, domain)
            if not lookup.ok:
                continue
            result = fetch_url(world.network, client, lookup.ips[0], domain)
            if result.ok:
                wins += 1
        return wins

    def test_hardened_beats_single_shot(self):
        baseline = self.probe_successes(build_world(seed=SEED, scale=SCALE))
        hardened = self.probe_successes(make_faulty_world())
        naked = self.probe_successes(
            make_faulty_world(hardening=NO_HARDENING))
        # Hardened clients recover everything the clean network offers;
        # the seed repo's single-shot clients visibly lose probes.
        assert hardened == baseline
        assert naked < hardened
