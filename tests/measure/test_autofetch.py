"""The censorship-aware fetcher."""

import pytest

from repro.core.evasion.autofetch import CensorshipAwareFetcher
from repro.core.measure import canonical_payload, express_http_probe


def censored_domains(world, isp, limit=3):
    client = world.client_of(isp)
    found = []
    for domain in sorted(world.blocklists.http[isp]):
        ip = world.hosting.ip_for(domain, "in")
        verdict = express_http_probe(world.network, client, ip,
                                     canonical_payload(domain))
        if verdict.censored:
            found.append(domain)
            if len(found) >= limit:
                break
    if not found:
        pytest.skip(f"no censored domains for {isp}")
    return found


class TestCleanFetch:
    def test_uncensored_site_fetched_plainly(self, small_world):
        world = small_world
        blocked = world.blocklists.all_blocked_domains()
        clean = next(s.domain for s in world.corpus
                     if s.domain not in blocked and s.hosting == "normal"
                     and not s.https)
        fetcher = CensorshipAwareFetcher(world, "airtel")
        outcome = fetcher.fetch(clean)
        assert outcome.success
        assert not outcome.censorship_detected
        assert outcome.strategy_used is None


class TestEvadingFetch:
    def test_idea_censored_site_auto_evaded(self, small_world):
        world = small_world
        domain = censored_domains(world, "idea", 1)[0]
        fetcher = CensorshipAwareFetcher(world, "idea")
        outcome = fetcher.fetch(domain)
        assert outcome.censorship_detected
        assert outcome.success, outcome.detail
        assert outcome.strategy_used in (
            "host-value-whitespace", "host-value-tab",
            "host-trailing-space")

    def test_airtel_censored_site_auto_evaded(self, small_world):
        world = small_world
        domain = censored_domains(world, "airtel", 1)[0]
        fetcher = CensorshipAwareFetcher(world, "airtel")
        outcome = fetcher.fetch(domain)
        assert outcome.success, outcome.detail
        assert outcome.strategy_used is not None

    def test_strategy_memory_short_circuits(self, small_world):
        world = small_world
        domains = censored_domains(world, "idea", 3)
        fetcher = CensorshipAwareFetcher(world, "idea")
        first = fetcher.fetch(domains[0])
        assert first.success
        # The second censored fetch starts with the remembered winner.
        second = fetcher.fetch(domains[1])
        assert second.success
        assert second.strategies_tried[0] == first.strategy_used

    def test_mtnl_dns_poisoning_auto_evaded(self, small_world):
        world = small_world
        from repro.core.measure import resolver_service_at
        deployment = world.isp("mtnl")
        service = resolver_service_at(world.network,
                                      deployment.default_resolver_ip)
        # Pick a DNS-blocked site that is not also HTTP-collateral-hit.
        client = deployment.client
        domain = None
        for candidate in sorted(service.config.blocklist):
            ip = world.hosting.ip_for(candidate, "in")
            if ip is None:
                continue
            verdict = express_http_probe(world.network, client, ip,
                                         canonical_payload(candidate))
            if not verdict.censored:
                domain = candidate
                break
        if domain is None:
            pytest.skip("every DNS-blocked site also collateral-blocked")
        fetcher = CensorshipAwareFetcher(world, "mtnl")
        outcome = fetcher.fetch(domain)
        assert outcome.censorship_detected
        assert outcome.success, outcome.detail
        assert outcome.strategy_used == "alternate-resolver"

    def test_stats(self, small_world):
        world = small_world
        domain = censored_domains(world, "idea", 1)[0]
        fetcher = CensorshipAwareFetcher(world, "idea")
        fetcher.fetch(domain)
        stats = fetcher.stats()
        assert stats["fetches"] == 1
        assert stats["censored"] == 1
        assert stats["evaded"] == 1
        assert stats["failed"] == 0
