"""ISP builder internals: deployments must encode the profiles."""

import pytest

from repro.isps import HTTP_FILTERING_ISPS, PROFILES, profile


class TestProfiles:
    def test_profile_lookup(self):
        assert profile("airtel").name == "airtel"
        with pytest.raises(KeyError):
            profile("nosuchisp")

    def test_pools_disjoint(self):
        from repro.netsim import Prefix
        pools = [Prefix.parse(p.pool) for p in PROFILES.values()]
        for i, a in enumerate(pools):
            for b in pools[i + 1:]:
                a_range = (a.network, a.network + a.size)
                b_range = (b.network, b.network + b.size)
                assert a_range[1] <= b_range[0] or b_range[1] <= a_range[0]

    def test_upstreams_reference_real_isps(self):
        for p in PROFILES.values():
            for upstream, weight in p.upstreams:
                assert upstream in PROFILES
                assert weight >= 1

    def test_peering_sizes_fit_master_lists(self):
        from repro.websites import HTTP_BLOCKLIST_SIZES
        for p in PROFILES.values():
            if not p.peering_list_sizes:
                continue
            master = HTTP_BLOCKLIST_SIZES[p.name]
            for stub, size in p.peering_list_sizes.items():
                assert size <= master, (p.name, stub)

    def test_mechanism_classification_helpers(self):
        assert profile("airtel").censors_http
        assert profile("airtel").middlebox_kind == "wiretap"
        assert profile("idea").middlebox_kind == "interceptive"
        assert profile("mtnl").censors_dns
        assert not profile("mtnl").censors_http
        assert profile("nkn").middlebox_kind is None


class TestDeployedBoxes:
    def test_box_counts_track_coverage(self, small_world):
        for isp in HTTP_FILTERING_ISPS:
            deployment = small_world.isp(isp)
            n_agg = len(deployment.aggregation)
            expected = round(n_agg * deployment.profile.inside_coverage)
            assert len(deployment.middleboxes) == max(1, expected) or \
                len(deployment.middleboxes) == expected

    def test_box_blocklists_subsets_of_master(self, small_world):
        for isp in HTTP_FILTERING_ISPS:
            deployment = small_world.isp(isp)
            for box in deployment.middleboxes:
                assert box.spec.blocklist <= deployment.http_blocklist

    def test_trigger_disciplines_per_family(self, small_world):
        airtel_box = small_world.isp("airtel").middleboxes[0]
        assert airtel_box.spec.exact_keyword_case
        assert not airtel_box.spec.strict_value_whitespace

        idea_box = small_world.isp("idea").middleboxes[0]
        assert not idea_box.spec.exact_keyword_case
        assert idea_box.spec.strict_value_whitespace
        assert not idea_box.spec.inspect_last_host_only

        vodafone_box = small_world.isp("vodafone").middleboxes[0]
        assert vodafone_box.spec.inspect_last_host_only

    def test_jio_boxes_source_scoped(self, small_world):
        for box in small_world.isp("jio").middleboxes:
            assert box.source_prefixes is not None
            assert box.in_scope(small_world.client_of("jio").ip)
            assert not box.in_scope("8.8.8.8")

    def test_airtel_ip_id_quirk_configured(self, small_world):
        for box in small_world.isp("airtel").middleboxes:
            assert box.fixed_ip_id == 242
        for box in small_world.isp("jio").middleboxes:
            assert box.fixed_ip_id is None

    def test_middlebox_routers_anonymized(self, small_world):
        for isp in HTTP_FILTERING_ISPS:
            for box in small_world.isp(isp).middleboxes:
                assert box.router is not None
                assert box.router.anonymized

    def test_all_boxes_inspect_port_80_only(self, small_world):
        """Section 6.3: every deployed box inspects TCP 80 only."""
        for box in small_world.all_middleboxes():
            assert box.spec.ports == (80,)
            assert not box.spec.inspects_port(443)
            assert not box.spec.inspects_port(8080)

    def test_boxes_require_handshake(self, small_world):
        for box in small_world.all_middleboxes():
            assert box.require_handshake


class TestResolverDeployment:
    def test_mtnl_poisoned_fraction_matches_profile(self, small_world):
        deployment = small_world.isp("mtnl")
        poisoned = deployment.poisoned_resolver_ips()
        # Scaled 383-of-448; allow slack for rounding plus the extra
        # honest client resolver.
        fraction = len(poisoned) / (len(deployment.resolvers) - 1)
        assert 0.7 < fraction < 0.95

    def test_poison_answers_use_isp_space_or_bogons(self, small_world):
        from repro.netsim import is_bogon
        deployment = small_world.isp("mtnl")
        for ip, service in deployment.resolvers:
            if not service.config.is_poisoned:
                continue
            for domain in sorted(service.config.blocklist)[:3]:
                answer = service.config.poison_strategy(domain)
                assert is_bogon(answer) or deployment.pool.contains(answer)

    def test_resolver_blocklists_sample_dns_master(self, small_world):
        deployment = small_world.isp("mtnl")
        master = deployment.dns_blocklist
        for _, service in deployment.resolvers:
            assert service.config.blocklist <= master
