"""``--tenant`` spec parsing: names, quotas, and rejections."""

import pytest

from repro.serve.tenants import (
    DEFAULT_MAX_QUEUED,
    TenantSpecError,
    parse_tenant_spec,
    parse_tenants,
)


class TestParseTenantSpec:
    def test_bare_name_gets_defaults(self):
        config = parse_tenant_spec("alice")
        assert config.name == "alice"
        assert config.weight == 1
        assert config.max_slots is None
        assert config.max_queued == DEFAULT_MAX_QUEUED

    def test_full_spec(self):
        config = parse_tenant_spec("noc:3:4:8")
        assert (config.name, config.weight, config.max_slots,
                config.max_queued) == ("noc", 3, 4, 8)

    def test_empty_fields_fall_back_to_defaults(self):
        config = parse_tenant_spec("lab::2")
        assert config.weight == 1
        assert config.max_slots == 2

    def test_max_slots_capped_by_budget(self):
        assert parse_tenant_spec("a:1:64").resolved_max_slots(4) == 4
        assert parse_tenant_spec("a").resolved_max_slots(4) == 4
        assert parse_tenant_spec("a:1:2").resolved_max_slots(4) == 2

    @pytest.mark.parametrize("spec", [
        "", "/etc", "a:b", "a:0", "a:1:0", "a:1:1:0", "a:1:1:1:1",
        "..", "-dash-first",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(TenantSpecError):
            parse_tenant_spec(spec)


class TestParseTenants:
    def test_duplicates_rejected(self):
        with pytest.raises(TenantSpecError, match="declared twice"):
            parse_tenants(["alice", "alice:2"])

    def test_indexing(self):
        tenants = parse_tenants(["b", "a:2"])
        assert sorted(tenants) == ["a", "b"]
        assert tenants["a"].weight == 2
