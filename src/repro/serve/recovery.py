"""The spool: durable submissions and crash recovery.

Layout (one directory per accepted campaign)::

    <spool>/<tenant>/<run_id>/
        submission.json   what the tenant asked for (atomic write)
        status.json       lifecycle state (atomic write)
        run/              the campaign run directory (journal.jsonl,
                          tables.txt, sidecars) — owned by Campaign

Lifecycle state machine (every transition is an atomic
``status.json`` replace)::

    queued ──────────► running ───► complete | failed
      ▲                   │
      │     drain/SIGTERM │ SIGKILL/crash
      │                   ▼
      └────────────── interrupted
          (boot recovery re-enqueues, resuming the journal)

Boot recovery (:meth:`Spool.recover`) scans every configured tenant's
directory and classifies each run by its **journal**, not just its
status file — the journal is fsynced truth, the status file is a hint:

* journal ends with an ``end`` record → the campaign finished before
  the crash; finalize ``status.json`` and do not re-run;
* journal exists without an ``end`` record → re-enqueue with
  ``resume=True``; the ordinary ``--resume`` machinery replays the
  hash chain, truncates any torn tail, and re-runs only missing
  units — bytes end up identical to a never-interrupted run;
* no journal yet → the crash landed before the campaign started;
  re-enqueue fresh.

``run_id`` allocation is a per-tenant counter continued from the
directory scan (``c000001``, ``c000002``, …) — deterministic, and
collision-free across restarts.
"""

from __future__ import annotations

import dataclasses
import os
import re
from typing import Dict, List, Optional, Tuple

from ..runner.atomicio import read_json, replace_json

_RUN_ID_RE = re.compile(r"^c(\d{6})$")

#: States that mean "this run needs no further work".
FINAL_STATES = ("complete", "failed")


@dataclasses.dataclass
class CampaignJob:
    """One accepted campaign: where it lives and what it asked for."""

    tenant: str
    run_id: str
    job_dir: str
    submission: Dict
    #: Continue an existing journal instead of starting fresh.
    resume: bool = False

    @property
    def slots(self) -> int:
        return int(self.submission.get("workers") or 1)

    @property
    def run_dir(self) -> str:
        return os.path.join(self.job_dir, "run")

    @property
    def status_path(self) -> str:
        return os.path.join(self.job_dir, "status.json")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.run_dir, "journal.jsonl")


class Spool:
    """Per-tenant durable campaign storage under one root."""

    def __init__(self, root: str) -> None:
        self.root = root

    def ensure(self, tenants) -> None:
        os.makedirs(self.root, exist_ok=True)
        for name in tenants:
            os.makedirs(os.path.join(self.root, name), exist_ok=True)

    def writable(self) -> bool:
        """Probe write for readiness: can we still accept work?"""
        probe = os.path.join(self.root, ".probe.tmp")
        try:
            with open(probe, "w", encoding="utf-8") as fh:
                fh.write("probe")
            os.remove(probe)
            return True
        except OSError:
            return False

    # -- submission ---------------------------------------------------

    def next_run_id(self, tenant: str) -> str:
        highest = 0
        tenant_dir = os.path.join(self.root, tenant)
        try:
            names = os.listdir(tenant_dir)
        except OSError:
            names = []
        for name in names:
            match = _RUN_ID_RE.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"c{highest + 1:06d}"

    def accept(self, tenant: str, submission: Dict) -> CampaignJob:
        """Durably record a submission; returns the spooled job.

        The directory plus ``submission.json`` and ``status.json``
        land *before* the caller acknowledges the tenant, so an
        accepted campaign survives any crash from here on.
        """
        run_id = self.next_run_id(tenant)
        job_dir = os.path.join(self.root, tenant, run_id)
        os.makedirs(job_dir)
        job = CampaignJob(tenant=tenant, run_id=run_id, job_dir=job_dir,
                          submission=dict(submission))
        replace_json(os.path.join(job_dir, "submission.json"),
                     job.submission)
        self.set_state(job, "queued")
        return job

    def set_state(self, job: CampaignJob, state: str, **extra) -> None:
        payload = {"state": state, "tenant": job.tenant,
                   "run_id": job.run_id}
        payload.update(extra)
        replace_json(job.status_path, payload)

    def read_state(self, job_dir: str) -> Dict:
        return read_json(os.path.join(job_dir, "status.json"),
                         default={}) or {}

    # -- recovery -----------------------------------------------------

    def jobs(self, tenant: str) -> List[CampaignJob]:
        """Every spooled job for *tenant*, oldest first."""
        tenant_dir = os.path.join(self.root, tenant)
        try:
            names = sorted(n for n in os.listdir(tenant_dir)
                           if _RUN_ID_RE.match(n))
        except OSError:
            return []
        out = []
        for name in names:
            job_dir = os.path.join(tenant_dir, name)
            submission = read_json(
                os.path.join(job_dir, "submission.json"), default=None)
            if submission is None:
                # Torn mid-accept (crash between mkdir and the
                # submission write): nothing to run, mark and move on.
                job = CampaignJob(tenant=tenant, run_id=name,
                                  job_dir=job_dir, submission={})
                self.set_state(job, "failed",
                               reason="submission unreadable")
                continue
            out.append(CampaignJob(tenant=tenant, run_id=name,
                                   job_dir=job_dir,
                                   submission=submission))
        return out

    def recover(self, tenants) -> Tuple[List[CampaignJob], List[Dict]]:
        """Scan the spool; return ``(jobs_to_enqueue, finalized)``.

        ``finalized`` describes runs whose journal proves they had
        already finished (reported, not re-run).
        """
        to_run: List[CampaignJob] = []
        finalized: List[Dict] = []
        for tenant in sorted(tenants):
            for job in self.jobs(tenant):
                state = self.read_state(job.job_dir).get("state")
                if state in FINAL_STATES:
                    continue
                end_status = _journal_end_status(job.journal_path)
                if end_status is not None:
                    # Finished before the crash; only status.json was
                    # lost.  Record the truth, skip the re-run.
                    final = ("complete" if end_status == "complete"
                             else "failed")
                    self.set_state(job, final, end=end_status,
                                   recovered=True)
                    finalized.append({"tenant": tenant,
                                      "run_id": job.run_id,
                                      "state": final})
                    continue
                job.resume = os.path.exists(job.journal_path)
                self.set_state(job, "queued", recovered=True,
                               resume=job.resume)
                to_run.append(job)
        return to_run, finalized


def _journal_end_status(journal_path: str) -> Optional[str]:
    """The journal's ``end`` status, or ``None`` if it never ended."""
    if not os.path.exists(journal_path):
        return None
    from ..runner.journal import Journal

    try:
        records, _ = Journal.load(journal_path)
    except Exception:
        # Unreadable head: let the resume machinery (which truncates
        # torn tails and validates the chain) deal with it.
        return None
    for rec in reversed(records):
        if rec.get("type") == "end":
            return rec.get("status", "partial")
    return None
