"""Open-resolver scanning and censorious-resolver identification.

Section 3.2-III: sweep the ISP's address space with queries for a
known-good name (open resolvers answer), then interrogate each open
resolver with all 1,200 PBW queries; a resolver returning even one
manipulated answer (ISP-internal or bogon address) is censorious.

The sweep and interrogation use the express DNS layer (hundreds of
thousands of queries); packet-level equivalence for sampled resolvers
is covered by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ...netsim.addressing import Prefix, is_bogon
from ..vantage import VantagePoint
from .fastprobe import express_dns_probe


@dataclass
class ResolverScanResult:
    """Everything the scan learned about one ISP's resolvers."""

    isp: str
    swept_addresses: int = 0
    open_resolvers: List[str] = field(default_factory=list)
    #: resolver -> set of domains it answered with a manipulated IP.
    censorious: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def censorious_resolvers(self) -> List[str]:
        return sorted(self.censorious)

    @property
    def coverage(self) -> float:
        """Fraction of open resolvers that are poisoned (Figure 2)."""
        if not self.open_resolvers:
            return 0.0
        return len(self.censorious) / len(self.open_resolvers)

    def blocked_union(self) -> Set[str]:
        merged: Set[str] = set()
        for blocked in self.censorious.values():
            merged |= blocked
        return merged


def sweep_open_resolvers(
    world,
    isp_name: str,
    *,
    probe_domain: Optional[str] = None,
    prefixes: Optional[List[Prefix]] = None,
) -> ResolverScanResult:
    """Sweep the ISP's address space for open resolvers.

    ``probe_domain`` must be an uncensored name with a known answer —
    the paper uses their own institution's site; we default to the
    top-ranked Alexa destination.
    """
    deployment = world.isp(isp_name)
    vantage = VantagePoint.inside(world, isp_name)
    if probe_domain is None:
        probe_domain = world.alexa[0].domain
        expected = {world.alexa[0].ip}
    else:
        expected = set(world.global_dns.all_addresses(probe_domain))
    if prefixes is None:
        prefixes = [deployment.pool]

    result = ResolverScanResult(isp=isp_name)
    network = world.network
    for prefix in prefixes:
        for ip in prefix.hosts():
            result.swept_addresses += 1
            # Cheap pre-filter: only owned addresses can answer.
            if network.owner_of(ip) is None:
                continue
            answer = express_dns_probe(network, vantage.host, ip,
                                       probe_domain)
            if answer.ok and set(answer.ips) & expected:
                result.open_resolvers.append(ip)
    return result


def identify_censorious(
    world,
    isp_name: str,
    scan: ResolverScanResult,
    domains: Optional[Iterable[str]] = None,
) -> ResolverScanResult:
    """Interrogate every open resolver with the PBW list.

    A resolver is censorious when any answer is manipulated — bogon, or
    inside the scanned ISP itself (no PBW is hosted there).
    """
    deployment = world.isp(isp_name)
    vantage = VantagePoint.inside(world, isp_name)
    if domains is None:
        domains = world.corpus.domains()
    domains = list(domains)

    for resolver_ip in scan.open_resolvers:
        # One express probe establishes reachability and detects any
        # on-path injector; the per-domain interrogation then asks the
        # resolver directly (paths are static, re-walking them half a
        # million times would be pure overhead).
        first = express_dns_probe(world.network, vantage.host,
                                  resolver_ip, domains[0])
        if not first.responded:
            continue
        manipulated: Set[str] = set()
        if first.injected:
            for domain in domains:
                answer = express_dns_probe(world.network, vantage.host,
                                           resolver_ip, domain)
                if answer.ok and _is_manipulated(answer.ips, deployment):
                    manipulated.add(domain)
        else:
            from ...dnssim.message import DNSQuery
            from .fastprobe import resolver_service_at

            service = resolver_service_at(world.network, resolver_ip)
            if service is None:
                continue
            for domain in domains:
                answer = service.answer(DNSQuery(qname=domain), resolver_ip)
                if answer.rcode != "NOERROR" or not answer.ips:
                    continue
                if _is_manipulated(answer.ips, deployment):
                    manipulated.add(domain)
        if manipulated:
            scan.censorious[resolver_ip] = manipulated
    return scan


def scan_isp_resolvers(
    world,
    isp_name: str,
    domains: Optional[Iterable[str]] = None,
    **sweep_kwargs,
) -> ResolverScanResult:
    """Convenience: sweep then interrogate."""
    scan = sweep_open_resolvers(world, isp_name, **sweep_kwargs)
    return identify_censorious(world, isp_name, scan, domains)


def _is_manipulated(ips, deployment) -> bool:
    for ip in ips:
        if is_bogon(ip):
            return True
        if deployment.pool.contains(ip):
            return True
    return False
