"""DNS-filtering detection — the section 3.2-II pipeline.

1. Resolve every PBW through the test ISP and through Tor; overlapping
   answer sets are uncensored.
2. Frequency analysis over the remainder: one address answering for
   many unrelated domains is the signature of a static poison address
   (after removing genuine shared hosting, where Tor sees the same
   sharing).
3. Heuristics: answers inside the client's own AS, and bogon answers,
   are manipulated.
4. Whatever survives is fetched through Tor pinned to the suspicious
   address; serving the real content clears it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ...netsim.addressing import is_bogon
from ..groundtruth.tor import TorCircuit
from ..groundtruth.verify import same_site_content
from ..vantage import VantagePoint


@dataclass
class DNSDetectionOutcome:
    """Verdict for one domain."""

    domain: str
    resolved_ips: List[str] = field(default_factory=list)
    censored: bool = False
    evidence: str = ""


@dataclass
class DNSDetectionRun:
    """One DNS-filtering campaign from one client."""

    vantage: str
    outcomes: Dict[str, DNSDetectionOutcome] = field(default_factory=dict)
    #: Frequency analysis result: suspicious address -> #domains.
    poison_address_counts: Counter = field(default_factory=Counter)

    def censored_domains(self) -> Set[str]:
        return {d for d, o in self.outcomes.items() if o.censored}

    def poison_addresses(self) -> Set[str]:
        return set(self.poison_address_counts)


def detect_dns_filtering(
    world,
    isp_name: str,
    domains: Optional[Iterable[str]] = None,
    *,
    resolver_ip: Optional[str] = None,
) -> DNSDetectionRun:
    """Run the full DNS-filtering detection pipeline."""
    vantage = VantagePoint.inside(world, isp_name)
    tor = TorCircuit(world)
    if domains is None:
        domains = world.corpus.domains()
    if resolver_ip is None:
        resolver_ip = vantage.default_resolver_ip
    run = DNSDetectionRun(vantage=vantage.label)

    # Phase 1: resolve everywhere; set aside the overlapping answers.
    suspicious: Dict[str, List[str]] = {}
    for domain in domains:
        outcome = DNSDetectionOutcome(domain=domain)
        run.outcomes[domain] = outcome
        lookup = vantage.resolve(domain, resolver_ip=resolver_ip)
        outcome.resolved_ips = list(lookup.ips)
        tor_ips = set(tor.resolve(domain).ips)
        if not tor_ips:
            outcome.evidence = "not resolvable via Tor; out of scope"
            continue
        if not lookup.ok:
            outcome.censored = True
            outcome.evidence = "no answer from ISP resolver"
            continue
        if tor_ips & set(lookup.ips):
            outcome.evidence = "overlapping answers"
            continue
        suspicious[domain] = list(lookup.ips)

    # Phase 2: frequency analysis — repeated addresses across unrelated
    # domains (Tor disagrees about all of them) are poison candidates.
    counts: Counter = Counter()
    for ips in suspicious.values():
        for ip in set(ips):
            counts[ip] += 1
    repeated = {ip for ip, count in counts.items() if count > 1}
    run.poison_address_counts = Counter(
        {ip: counts[ip] for ip in repeated})

    client_isp = world.isp_owning(vantage.host.ip)
    for domain, ips in suspicious.items():
        outcome = run.outcomes[domain]
        evidence = _judge_suspicious(world, tor, domain, ips,
                                     repeated, client_isp)
        if evidence is not None:
            outcome.censored = True
            outcome.evidence = evidence
        else:
            outcome.evidence = "suspicious address verified legitimate"
    return run


def _judge_suspicious(world, tor: TorCircuit, domain: str, ips: List[str],
                      repeated: Set[str], client_isp: Optional[str]
                      ) -> Optional[str]:
    for ip in ips:
        if is_bogon(ip):
            return f"bogon answer {ip}"
    for ip in ips:
        if client_isp is not None and world.isp_owning(ip) == client_isp:
            return f"answer {ip} inside client AS"
    for ip in ips:
        if ip in repeated:
            return f"answer {ip} repeats across unrelated domains"
    # Phase 3: fetch the content from the suspicious address via Tor.
    reference = tor.fetch(domain)
    for ip in ips:
        pinned = tor.fetch(domain, ip=ip)
        if pinned is None or not pinned.ok:
            return f"answer {ip} serves nothing"
        if (reference is not None and reference.ok
                and not same_site_content(pinned.first_response.body,
                                          reference.first_response.body)):
            return f"answer {ip} serves different content"
    return None
