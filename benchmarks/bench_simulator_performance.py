"""Simulator performance characteristics.

Not a paper artifact — these benchmarks characterize the substrate
itself (the one part of this repository where wall-clock time *is* the
result): world construction, packet-level fetch throughput, express
probe throughput, and resolver-scan throughput.  Unlike the experiment
benches these run multiple rounds for stable statistics.
"""

import statistics
import time

import pytest

from repro.core.measure import canonical_payload, express_http_probe
from repro.core.measure.fastprobe import express_dns_probe
from repro.httpsim import fetch_url
from repro.isps import build_world


@pytest.fixture(scope="module")
def perf_world():
    return build_world(seed=99, scale=0.25)


def test_world_build_small(benchmark):
    world = benchmark.pedantic(
        lambda: build_world(seed=7, scale=0.1), rounds=3, iterations=1)
    assert len(world.network.nodes) > 100


def test_packet_level_fetch_throughput(benchmark, perf_world):
    world = perf_world
    client = world.client_of("nkn")
    blocked = world.blocklists.all_blocked_domains()
    sites = [s for s in world.corpus
             if s.domain not in blocked and s.hosting == "normal"
             and not s.https][:20]
    targets = [(world.hosting.ip_for(s.domain, "in"), s.domain)
               for s in sites]

    def fetch_batch():
        ok = 0
        for ip, domain in targets:
            result = fetch_url(world.network, client, ip, domain)
            ok += bool(result.ok)
        return ok

    ok = benchmark.pedantic(fetch_batch, rounds=5, iterations=1)
    assert ok == len(targets)


def test_slot_scheduler_fetch(benchmark, perf_world):
    """Fetch throughput pinned to the slotted calendar queue.

    Same shape as the main fetch bench but over a different site slice
    and explicitly asserting the scheduler, so the baseline tracks the
    calendar queue itself (the main fetch case follows whatever the
    session default is)."""
    world = perf_world
    network = world.network
    network.set_scheduler("slots")
    assert network.scheduler == "slots"
    client = world.client_of("mtnl")
    blocked = world.blocklists.all_blocked_domains()
    sites = [s for s in world.corpus
             if s.domain not in blocked and s.hosting == "normal"
             and not s.https][20:30]
    targets = [(world.hosting.ip_for(s.domain, "in"), s.domain)
               for s in sites]

    def fetch_batch():
        ok = 0
        for ip, domain in targets:
            result = fetch_url(world.network, client, ip, domain)
            ok += bool(result.ok)
        return ok

    ok = benchmark.pedantic(fetch_batch, rounds=5, iterations=1)
    assert ok == len(targets)


def test_population_session_throughput(benchmark):
    """Population-engine day: 50k sessions over a 100k-domain corpus.

    Tracks sessions/second through the cohort-vectorized batch path
    (Zipf draws, outcome classification, sketch updates — see
    docs/POPULATION.md).  The in-bench floor is deliberately loose for
    shared runners; the committed baseline case gives the real gate
    via perf_trajectory check."""
    from repro.population import PopulationConfig, PopulationEngine
    from repro.websites.synthetic import SyntheticCorpus

    sessions = 50_000
    corpus = SyntheticCorpus(seed=1808, size=100_000)
    config = PopulationConfig(seed=1808, corpus_size=100_000,
                              sessions=sessions)

    def run_day():
        return PopulationEngine("idea", corpus=corpus,
                                config=config).run()

    start = time.perf_counter()
    outcome = run_day()
    elapsed = time.perf_counter() - start
    assert sum(outcome.hourly) == sessions
    assert outcome.blocked_total > 0
    assert sessions / elapsed > 40_000, (
        f"population engine at {sessions / elapsed:,.0f} sessions/s "
        f"(floor 40,000)")

    outcome = benchmark.pedantic(run_day, rounds=3, iterations=1)
    assert sum(outcome.hourly) == sessions


def test_packet_pool_express(benchmark):
    """Acquire/release cycle time of the packet pool's free list.

    A microbench of the pool itself: after warm-up every acquire is a
    reuse, so this tracks the header-reset cost that replaces a full
    packet construction on the hot path."""
    from repro.netsim.packets import PacketPool, TCPFlags

    pool = PacketPool()
    payload = b"GET / HTTP/1.1\r\nHost: example.in\r\n\r\n"

    def churn():
        for _ in range(2000):
            packet = pool.acquire_tcp("10.0.0.1", "10.0.0.2", 40000, 80,
                                      seq=1, flags=TCPFlags.PSH,
                                      payload=payload)
            pool.release(packet)
        return pool.reused

    reused = benchmark.pedantic(churn, rounds=5, iterations=1)
    assert reused >= 1999  # everything past the first acquire recycles


def test_express_http_probe_throughput(benchmark, perf_world):
    world = perf_world
    client = world.client_of("idea")
    domains = world.corpus.domains()
    payloads = [(world.hosting.ip_for(d, "in"), canonical_payload(d))
                for d in domains]

    def probe_all():
        censored = 0
        for ip, payload in payloads:
            verdict = express_http_probe(world.network, client, ip, payload)
            censored += verdict.censored
        return censored

    censored = benchmark.pedantic(probe_all, rounds=3, iterations=1)
    assert censored > 0


def test_express_dns_probe_throughput(benchmark, perf_world):
    world = perf_world
    deployment = world.isp("mtnl")
    client = deployment.client
    resolver_ip = deployment.default_resolver_ip
    domains = world.corpus.domains()

    def resolve_all():
        answered = 0
        for domain in domains:
            answer = express_dns_probe(world.network, client,
                                       resolver_ip, domain)
            answered += answer.responded
        return answered

    answered = benchmark.pedantic(resolve_all, rounds=3, iterations=1)
    assert answered == len(domains)


def test_fib_speedup_express_probe(perf_world):
    """Acceptance check: the FIB fast path buys >=2x on express probes.

    The same sweep as the throughput bench, timed once with the
    forwarding caches on (warm) and once with
    ``routing_cache_enabled = False`` — which routes every probe
    through the seed implementation, bypassing the FIB, the path
    cache, and the express box memo.
    """
    world = perf_world
    client = world.client_of("idea")
    domains = world.corpus.domains()
    payloads = [(world.hosting.ip_for(d, "in"), canonical_payload(d))
                for d in domains]
    network = world.network

    def sweep():
        censored = 0
        for ip, payload in payloads:
            verdict = express_http_probe(network, client, ip, payload)
            censored += verdict.censored
        return censored

    def timed():
        start = time.perf_counter()
        censored = sweep()
        return time.perf_counter() - start, censored

    sweep()  # warm the FIB, path cache, and box memo
    fast = min(timed() for _ in range(3))
    assert network.routing_cache_enabled
    network.routing_cache_enabled = False
    try:
        slow = min(timed() for _ in range(2))
    finally:
        network.routing_cache_enabled = True  # perf_world is shared
    assert fast[1] == slow[1], "cached and uncached verdicts diverged"
    speedup = slow[0] / fast[0]
    assert speedup >= 2.0, (
        f"FIB fast path only {speedup:.2f}x over the seed routing "
        f"(cached {fast[0] * 1e3:.1f} ms vs uncached "
        f"{slow[0] * 1e3:.1f} ms)")


def test_event_core_speedup_fetch(perf_world):
    """Acceptance check: the batched event core buys >=1.5x on fetches.

    The same batch as the fetch throughput bench, timed once with the
    event-core defaults (calendar queue, packet pool, delivery plans,
    content memo) and once with every one of their escape hatches
    pulled — ``scheduler="heap"``, ``packet_pooling_enabled = False``,
    ``delivery_plans_enabled = False``, content cache off — while the
    routing caches stay ON, so the ratio isolates this subsystem from
    the FIB's (which has its own gate above).  Measured ~1.9x locally;
    the gate sits at 1.5x to absorb shared-runner jitter (the full
    >=2x-versus-seed gate runs in CI via ``perf_trajectory check``,
    where the baseline predates the FIB too).
    """
    from repro.websites.content import set_content_cache

    world = perf_world
    network = world.network
    client = world.client_of("nkn")
    blocked = world.blocklists.all_blocked_domains()
    sites = [s for s in world.corpus
             if s.domain not in blocked and s.hosting == "normal"
             and not s.https][:20]
    targets = [(world.hosting.ip_for(s.domain, "in"), s.domain)
               for s in sites]

    def fetch_batch():
        ok = 0
        for ip, domain in targets:
            result = fetch_url(network, client, ip, domain)
            ok += bool(result.ok)
        return ok

    def timed():
        start = time.perf_counter()
        ok = fetch_batch()
        return time.perf_counter() - start, ok

    fetch_batch()  # warm the FIB and plan caches
    network.set_scheduler("slots")
    fast = min(timed() for _ in range(3))
    assert network.routing_cache_enabled
    try:
        network.set_scheduler("heap")
        network.packet_pooling_enabled = False
        network.delivery_plans_enabled = False
        set_content_cache(False)
        slow = min(timed() for _ in range(2))
    finally:  # perf_world is shared
        network.set_scheduler("slots")
        network.packet_pooling_enabled = True
        network.delivery_plans_enabled = True
        set_content_cache(True)
    assert fast[1] == slow[1] == len(targets), \
        "event core changed fetch outcomes"
    speedup = slow[0] / fast[0]
    assert speedup >= 1.5, (
        f"batched event core only {speedup:.2f}x over the seed core "
        f"(defaults {fast[0] * 1e3:.1f} ms vs escape hatches "
        f"{slow[0] * 1e3:.1f} ms)")


def test_trace_overhead_express_probe(perf_world):
    """Acceptance check: an attached-but-unsubscribed trace bus costs
    <5% on the express probe sweep.

    This is the cost a campaign pays for *enabled* tracing when no one
    is listening — each probe's emit site runs its two attribute tests
    (``trace is not None``, ``trace.active``) and nothing else.  The
    sweep is the same one the FIB gate times; both states are measured
    min-of-N to shave scheduler noise.
    """
    from repro.obs.trace import TraceBus

    world = perf_world
    client = world.client_of("idea")
    domains = world.corpus.domains()
    payloads = [(world.hosting.ip_for(d, "in"), canonical_payload(d))
                for d in domains]
    network = world.network

    def sweep():
        censored = 0
        for ip, payload in payloads:
            verdict = express_http_probe(network, client, ip, payload)
            censored += verdict.censored
        return censored

    def timed():
        # One sweep is ~1.5 ms — too short to resolve a 5% gate
        # against scheduler jitter; time a batch instead.
        start = time.perf_counter()
        censored = 0
        for _ in range(5):
            censored = sweep()
        return time.perf_counter() - start, censored

    sweep()  # warm caches so both states measure steady-state cost
    assert network.trace is None
    bus = TraceBus()
    # Interleave off/on rounds so clock-frequency drift and scheduler
    # noise land on both states equally; compare medians (min-of-N is
    # too sensitive to a single lucky round to resolve a 5% gate).
    off_rounds = []
    on_rounds = []
    try:
        for _ in range(9):
            network.trace = None
            off_rounds.append(timed())
            network.trace = bus
            assert not bus.active
            on_rounds.append(timed())
    finally:
        network.trace = None  # perf_world is shared
    assert off_rounds[0][1] == on_rounds[0][1], \
        "tracing changed probe verdicts"
    assert bus.emitted == 0, "unsubscribed bus delivered events"
    baseline = statistics.median(t for t, _ in off_rounds)
    traced = statistics.median(t for t, _ in on_rounds)
    overhead = traced / baseline - 1.0
    assert overhead < 0.05, (
        f"unsubscribed tracing costs {overhead * 100:.1f}% on the "
        f"express sweep (off {baseline * 1e3:.1f} ms vs on "
        f"{traced * 1e3:.1f} ms; gate is 5%)")
