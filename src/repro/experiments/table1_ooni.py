"""Table 1 — Accuracy of OONI: precision and recall per ISP.

Runs the OONI ``web_connectivity`` model over the PBW list from inside
each of the five tested ISPs, establishes ground truth behaviourally,
and reports (P, R) for Total / DNS / TCP / HTTP censorship — the cells
of the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.measure.metrics import PrecisionRecall, precision_recall
from ..core.measure.ooni import (
    BLOCKING_DNS,
    BLOCKING_HTTP,
    BLOCKING_TCP,
    OONIRun,
    run_ooni,
)
from ..isps.profiles import OONI_TESTED_ISPS
from .common import (
    Degradation,
    TableSpec,
    Unit,
    campaign_payload,
    domain_sample,
    fmt_cell,
    format_table,
    get_world,
    ground_truth_any,
    run_degradable,
)

#: Paper values: ISP -> {column: (precision, recall)}.
PAPER_TABLE1 = {
    "mtnl": {"total": (0.57, 0.42), "dns": (0.44, 0.10),
             "tcp": (0.0, 0.0), "http": (0.60, 0.64)},
    "airtel": {"total": (0.19, 0.11), "dns": (0.0, 0.0),
               "tcp": (0.0, 0.0), "http": (0.19, 0.11)},
    "idea": {"total": (0.57, 0.62), "dns": (0.0, 0.0),
             "tcp": (0.0, 0.0), "http": (0.57, 0.62)},
    "vodafone": {"total": (0.69, 0.82), "dns": (0.0, 0.0),
                 "tcp": (0.0, 0.0), "http": (0.70, 0.78)},
    "jio": {"total": (0.34, 0.15), "dns": (0.0, 0.0),
            "tcp": (0.0, 0.0), "http": (0.36, 0.14)},
}


@dataclass
class Table1Row:
    isp: str
    total: Optional[PrecisionRecall] = None
    dns: Optional[PrecisionRecall] = None
    tcp: Optional[PrecisionRecall] = None
    http: Optional[PrecisionRecall] = None
    ooni_flagged: int = 0
    actually_censored: int = 0
    #: Client retries the OONI campaign spent inside this ISP.
    retries: int = 0


@dataclass
class Table1Result:
    rows: List[Table1Row] = field(default_factory=list)
    runs: Dict[str, OONIRun] = field(default_factory=dict)
    degradation: Degradation = field(default_factory=Degradation)

    def row(self, isp: str) -> Table1Row:
        for row in self.rows:
            if row.isp == isp:
                return row
        raise KeyError(isp)

    def render(self) -> str:
        table = format_table(list(CAMPAIGN.headers), _body_rows(self),
                             title=CAMPAIGN.title)
        extra = self.degradation.describe()
        return table + ("\n" + extra if extra else "")


#: Campaign decomposition: one resumable unit per OONI-tested ISP.
CAMPAIGN = TableSpec(
    title="Table 1: Accuracy of OONI — precision and recall",
    headers=("ISP", "Total(P,R)", "DNS(P,R)", "TCP(P,R)",
             "HTTP(P,R)", "paper Total", "paper HTTP"),
)


def _body_rows(result: "Table1Result") -> List[List[str]]:
    body = []
    for row in result.rows:
        paper = PAPER_TABLE1.get(row.isp, {})
        body.append([
            row.isp,
            fmt_cell(row.total.as_tuple()),
            fmt_cell(row.dns.as_tuple()),
            fmt_cell(row.tcp.as_tuple()),
            fmt_cell(row.http.as_tuple()),
            fmt_cell(paper.get("total", "-")),
            fmt_cell(paper.get("http", "-")),
        ])
    return body


def units(isps=OONI_TESTED_ISPS):
    """Named measurement units for the campaign runner."""
    for isp in isps:
        yield Unit(isp, _campaign_unit(isp))


def _campaign_unit(isp: str):
    def unit_fn(world, domains):
        result = run(world, domains=domains, isps=(isp,))
        return campaign_payload(_body_rows(result), result.degradation)
    return unit_fn


def run(world=None, domains: Optional[List[str]] = None,
        isps=OONI_TESTED_ISPS) -> Table1Result:
    """Regenerate Table 1."""
    if world is None:
        world = get_world()
    if domains is None:
        domains = domain_sample(world)
    result = Table1Result()
    for isp in isps:
        ok, ooni = run_degradable(result.degradation, f"ooni@{isp}",
                                  run_ooni, world, isp, domains)
        if not ok:
            continue
        result.runs[isp] = ooni
        campaign = ooni.degraded()
        result.degradation.retries += campaign["retries"]
        for domain, site in ooni.results.items():
            if site.error is not None:
                result.degradation.record_error(
                    f"ooni@{isp}:{domain}", site.error)
        truth = ground_truth_any(world, isp, domains)
        actual_all = set(truth)
        actual_dns = {d for d, m in truth.items() if m == "dns"}
        actual_http = {d for d, m in truth.items() if m == "http"}
        row = Table1Row(
            isp=isp,
            total=precision_recall(ooni.flagged(), actual_all),
            dns=precision_recall(ooni.flagged(BLOCKING_DNS), actual_dns),
            tcp=precision_recall(ooni.flagged(BLOCKING_TCP), set()),
            http=precision_recall(ooni.flagged(BLOCKING_HTTP), actual_http),
            ooni_flagged=len(ooni.flagged()),
            actually_censored=len(actual_all),
            retries=campaign["retries"],
        )
        result.rows.append(row)
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
