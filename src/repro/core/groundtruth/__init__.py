"""Ground-truth channels: the Tor circuit and the manual oracle."""

from .tor import TorCircuit, TorLookup
from .verify import (
    MANUAL_ATTEMPTS,
    ManualVerdict,
    manually_verify,
    same_site_content,
    stable_core,
    verify_dns_answer,
)

__all__ = [
    "MANUAL_ATTEMPTS",
    "ManualVerdict",
    "TorCircuit",
    "TorLookup",
    "manually_verify",
    "same_site_content",
    "stable_core",
    "verify_dns_answer",
]
