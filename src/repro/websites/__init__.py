"""repro.websites — the synthetic PBW corpus and hosting substrate.

Generates the 1,200-site potentially-blocked-websites list (7 paper
categories, realistic hosting confounders), a synthetic Alexa top-1000,
per-ISP blocklists matching the paper's sizes, and the deployment code
that wires all of it into the simulated Internet.
"""

from .alexa import AlexaSite, build_alexa_destinations, DEFAULT_ALEXA_SIZE
from .blocklists import (
    BlocklistPlan,
    CATEGORY_SENSITIVITY,
    DNS_BLOCKLIST_SIZES,
    HTTP_BLOCKLIST_SIZES,
    build_blocklists,
    overlap_fraction,
)
from .categories import CATEGORIES, category_names
from .content import (
    PARKING_PROVIDERS,
    dynamic_chunk,
    page_response,
    parked_response,
    static_body,
)
from .corpus import (
    Corpus,
    DEFAULT_CORPUS_SEED,
    DEFAULT_CORPUS_SIZE,
    Website,
    build_corpus,
)
from .hosting import HostingDeployment, deploy_corpus
from .synthetic import (
    DEFAULT_SYNTHETIC_SIZE,
    MASTER_LIST_FRACTIONS,
    SyntheticCorpus,
)

__all__ = [
    "AlexaSite",
    "BlocklistPlan",
    "CATEGORIES",
    "CATEGORY_SENSITIVITY",
    "Corpus",
    "DEFAULT_ALEXA_SIZE",
    "DEFAULT_CORPUS_SEED",
    "DEFAULT_CORPUS_SIZE",
    "DEFAULT_SYNTHETIC_SIZE",
    "DNS_BLOCKLIST_SIZES",
    "HTTP_BLOCKLIST_SIZES",
    "HostingDeployment",
    "MASTER_LIST_FRACTIONS",
    "PARKING_PROVIDERS",
    "SyntheticCorpus",
    "Website",
    "build_alexa_destinations",
    "build_blocklists",
    "build_corpus",
    "category_names",
    "deploy_corpus",
    "dynamic_chunk",
    "overlap_fraction",
    "page_response",
    "parked_response",
    "static_body",
]
