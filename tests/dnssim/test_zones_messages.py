"""Zone data and DNS message unit tests."""

from repro.dnssim import (
    DNSQuery,
    DNSResponse,
    GlobalDNS,
    QidAllocator,
    REGIONS,
    ZoneRecord,
    next_qid,
    reset_qids,
)


class TestGlobalDNS:
    def test_simple_record_everywhere(self):
        dns = GlobalDNS()
        dns.add_simple("a.example", ["1.2.3.4", "1.2.3.5"])
        for region in REGIONS:
            assert dns.lookup("a.example", region) == ["1.2.3.4", "1.2.3.5"]

    def test_regional_record(self):
        dns = GlobalDNS()
        dns.add_regional("cdn.example",
                         {"in": ["5.5.5.5"], "us": ["6.6.6.6"]},
                         anycast=["7.7.7.7"])
        assert dns.lookup("cdn.example", "in") == ["5.5.5.5", "7.7.7.7"]
        assert dns.lookup("cdn.example", "us") == ["6.6.6.6", "7.7.7.7"]
        # Unknown region falls back to the default region's answer.
        assert dns.lookup("cdn.example", "apac") == ["6.6.6.6", "7.7.7.7"]

    def test_unknown_domain(self):
        assert GlobalDNS().lookup("nope.example") is None

    def test_www_alias(self):
        dns = GlobalDNS()
        dns.add_simple("a.example", ["1.2.3.4"])
        assert dns.lookup("www.a.example") == ["1.2.3.4"]
        assert "a.example" in dns
        assert "www.a.example" not in dns  # alias, not a record

    def test_all_addresses_deduplicated(self):
        dns = GlobalDNS()
        dns.add_regional("x.example",
                         {"in": ["1.1.1.1", "2.2.2.2"],
                          "us": ["2.2.2.2", "3.3.3.3"]})
        addresses = dns.all_addresses("x.example")
        assert sorted(addresses) == ["1.1.1.1", "2.2.2.2", "3.3.3.3"]
        assert dns.all_addresses("missing.example") == []

    def test_zone_record_defaults(self):
        record = ZoneRecord(domain="y.example", anycast=["9.9.9.9"])
        assert record.addresses("in") == ["9.9.9.9"]


class TestMessages:
    def test_qids_unique(self):
        ids = {next_qid() for _ in range(100)}
        assert len(ids) == 100

    def test_reset_qids_makes_sequence_reproducible(self):
        reset_qids()
        first = [next_qid() for _ in range(5)]
        reset_qids()
        assert [next_qid() for _ in range(5)] == first

    def test_reset_qids_custom_start_and_wrap(self):
        reset_qids(0xFFFE)
        assert [next_qid() for _ in range(4)] == [0xFFFE, 0xFFFF, 0, 1]
        reset_qids()

    def test_private_allocator_independent_of_default(self):
        own = QidAllocator(start=100)
        before = next_qid()
        assert own.next() == 100
        assert own.next() == 101
        # Drawing from a private allocator never advances the default.
        assert next_qid() == before + 1
        own.reset(7)
        assert own.next() == 7

    def test_query_default_qids_follow_reset(self):
        reset_qids(42)
        query = DNSQuery(qname="a.example")
        assert query.qid == 42
        reset_qids()

    def test_query_defaults(self):
        query = DNSQuery(qname="a.example")
        assert query.qtype == "A"
        assert 0 <= query.qid <= 0xFFFF

    def test_response_ok(self):
        ok = DNSResponse(qname="a", qid=1, ips=("1.1.1.1",))
        assert ok.ok
        assert not DNSResponse(qname="a", qid=1).ok
        assert not DNSResponse(qname="a", qid=1, ips=("1.1.1.1",),
                               rcode="SERVFAIL").ok

    def test_messages_hashable(self):
        a = DNSQuery(qname="x", qid=5)
        b = DNSQuery(qname="x", qid=5)
        assert a == b
        assert hash(a) == hash(b)
