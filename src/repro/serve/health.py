"""Liveness and readiness, backed by real signals.

``/healthz`` answers "is the process alive and serving" — it is true
whenever the HTTP loop can respond at all.

``/readyz`` answers "should new work be routed here" and is the AND
of observable conditions, each reported individually so an operator
can see *which* one flipped:

* ``accepting``   — not draining (SIGTERM flips this first);
* ``spool``       — the spool directory still takes writes (a probe
                    file, not a guess: admission durably spools before
                    acknowledging, so a read-only disk means 503);
* ``queue``       — admission queues have headroom (every tenant at
                    ``max_queued`` means the next submit is a 429
                    anyway);
* ``workers``     — the supervised pools look stable: worker crashes
                    are not outpacing committed units (counters fed by
                    the supervision event stream).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Crashes tolerated before commit progress is demanded: below this,
#: a fresh service with a flaky unit is not declared unhealthy.
CRASH_GRACE = 5


def workers_stable(crashes: int, commits: int,
                   grace: int = CRASH_GRACE) -> bool:
    """Are worker crashes outpacing useful work?

    The supervisor already retries and quarantines per unit; this is
    the service-level storm detector: once past the grace allowance,
    every crash must be matched by at least one committed unit.
    """
    return crashes <= grace + commits


def readiness(*, draining: bool, spool_writable: bool,
              queued: int, queue_capacity: int,
              crashes: int, commits: int) -> Tuple[bool, Dict]:
    """``(ready, components)`` for the ``/readyz`` body."""
    components = {
        "accepting": not draining,
        "spool": spool_writable,
        "queue": queued < queue_capacity,
        "workers": workers_stable(crashes, commits),
    }
    return all(components.values()), components
