"""Section 5 — anti-censorship effectiveness.

Paper shape asserted: every middlebox family falls to its documented
evasions (case fudging + client firewall for the wiretap ISPs,
whitespace fudging for the overt IM, the trailing-Host decoy for the
covert IM), the per-family negatives hold, and every censored site in
every ISP is reachable by at least one proxy-free strategy.
"""

from repro.experiments import evasion_matrix

from .conftest import run_once


def test_evasion(benchmark, world, record_output):
    result = run_once(benchmark,
                      lambda: evasion_matrix.run(world, sites_per_isp=5))
    record_output("evasion", result.render())

    assert not result.skipped, f"no censored sites for {result.skipped}"

    matrices = result.matrices

    # Wiretap ISPs (Airtel, Jio): case fudging and the FIN/RST-dropping
    # firewall both work; whitespace fudging does not.
    for isp in ("airtel", "jio"):
        assert matrices[isp].success_rate("host-keyword-case") >= 0.8, isp
        assert matrices[isp].success_rate("drop-fin-rst") >= 0.8, isp
        assert matrices[isp].success_rate("fragmented-get") >= 0.8, isp
        assert matrices[isp].success_rate("host-value-whitespace") <= 0.2, isp

    # Overt IM (Idea): whitespace fudging works; case fudging and the
    # client firewall are useless against an in-path box.
    assert matrices["idea"].success_rate("host-value-whitespace") >= 0.8
    assert matrices["idea"].success_rate("host-value-tab") >= 0.8
    assert matrices["idea"].success_rate("host-keyword-case") <= 0.2
    assert matrices["idea"].success_rate("drop-fin-rst") <= 0.2

    # Covert IM (Vodafone): only the trailing-Host decoy of the
    # request-crafting family works.
    assert matrices["vodafone"].success_rate(
        "trailing-uncensored-host") >= 0.8
    assert matrices["vodafone"].success_rate("host-value-whitespace") <= 0.2

    # The headline: every censored site evaded in every ISP.
    for isp in matrices:
        assert result.all_sites_evaded(isp), isp
