"""Mutators: determinism, structure preservation, dispatch."""

import pytest

from repro.fuzz import mutate, seed_corpus
from repro.fuzz.mutators import (
    HTTP_MUTATORS,
    TCP_MUTATORS,
    mutate_dns,
    mutate_http,
    mutate_tcp,
    sched_merge,
    sched_split,
)
from repro.fuzz.rng import derive_rng


def test_http_mutation_is_deterministic_per_label():
    corpus = seed_corpus("http")
    for iteration in range(20):
        a = mutate_http(derive_rng(7, "http", iteration), corpus)
        b = mutate_http(derive_rng(7, "http", iteration), corpus)
        assert a == b


def test_different_iterations_differ_somewhere():
    corpus = seed_corpus("http")
    mutants = {mutate_http(derive_rng(7, "http", i), corpus)
               for i in range(50)}
    assert len(mutants) > 10


def test_iteration_rng_is_position_independent():
    # The mutant for iteration 40 does not depend on having generated
    # iterations 0..39 first — the property resume relies on.
    corpus = seed_corpus("tcp")
    direct = mutate_tcp(derive_rng(7, "tcp", 40), corpus)
    for i in range(40):
        mutate_tcp(derive_rng(7, "tcp", i), corpus)
    after_run = mutate_tcp(derive_rng(7, "tcp", 40), corpus)
    assert direct == after_run


def test_individual_http_mutators_return_bytes():
    corpus = seed_corpus("http")
    for index, mutator in enumerate(HTTP_MUTATORS):
        rng = derive_rng("unit", index)
        out = mutator(rng, corpus[0])
        assert isinstance(out, bytes) and out


def test_tcp_mutators_preserve_schedule_shape():
    corpus = seed_corpus("tcp")
    for index, mutator in enumerate(TCP_MUTATORS):
        rng = derive_rng("unit", index)
        schedule = mutator(rng, list(corpus[0]))
        assert schedule
        for offset, data in schedule:
            assert isinstance(offset, int) and offset >= 0
            assert isinstance(data, bytes)


def test_split_then_merge_roundtrip():
    corpus = seed_corpus("tcp")
    whole = list(corpus[0])
    rng = derive_rng("split")
    split = sched_split(rng, whole)
    assert len(split) == 2
    assert sched_merge(rng, split) == whole


def test_dns_mutants_stay_dicts_with_qname():
    corpus = seed_corpus("dns")
    for i in range(30):
        entry = mutate_dns(derive_rng(7, "dns", i), corpus)
        assert set(entry) == {"qname", "resolver", "qid"}
        assert entry["resolver"] in ("honest", "poisoned")


def test_mutate_dispatch_rejects_unknown_target():
    with pytest.raises(ValueError):
        mutate("smtp", derive_rng(1), [b""])
