"""Evaluating anti-censorship strategies against live censorship.

``attempt_strategy`` tries one strategy for one blocked site from one
client and judges success the way the authors do: did the *real* site
content render (verified against the Tor ground truth), with no block
page?  ``evaluate_matrix`` builds the strategy × ISP effectiveness
matrix, and ``evade_all`` reproduces the paper's headline: every
blocked site, in every ISP, reachable without proxies or VPNs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ...httpsim.client import FetchResult
from ...middlebox.notification import looks_like_block_page
from ..groundtruth.tor import TorCircuit
from ..groundtruth.verify import same_site_content
from ..vantage import VantagePoint
from .strategies import CLIENT, DNS, REQUEST, STRATEGIES, EvasionStrategy


@dataclass
class EvasionAttempt:
    """One (strategy, domain) trial."""

    strategy: str
    domain: str
    success: bool
    detail: str = ""


@dataclass
class EvasionMatrix:
    """Strategy effectiveness per ISP."""

    isp: str
    #: strategy name -> (successes, trials)
    cells: Dict[str, List[int]] = field(default_factory=dict)
    attempts: List[EvasionAttempt] = field(default_factory=list)

    def record(self, attempt: EvasionAttempt) -> None:
        cell = self.cells.setdefault(attempt.strategy, [0, 0])
        cell[1] += 1
        if attempt.success:
            cell[0] += 1
        self.attempts.append(attempt)

    def success_rate(self, strategy_name: str) -> float:
        cell = self.cells.get(strategy_name)
        if not cell or cell[1] == 0:
            return 0.0
        return cell[0] / cell[1]

    def working_strategies(self, threshold: float = 0.8) -> List[str]:
        return sorted(name for name in self.cells
                      if self.success_rate(name) >= threshold)


def attempt_strategy(
    world,
    vantage: VantagePoint,
    domain: str,
    strategy: EvasionStrategy,
    *,
    tor: Optional[TorCircuit] = None,
    dst_ip: Optional[str] = None,
) -> EvasionAttempt:
    """Try one strategy once; success = real content rendered."""
    if tor is None:
        tor = TorCircuit(world)
    reference = tor.fetch(domain)
    if reference is None or not reference.ok:
        return EvasionAttempt(strategy.name, domain, False,
                              "no ground truth via Tor")

    if strategy.kind == DNS:
        lookup = vantage.resolve(domain, resolver_ip=world.google_dns.ip)
        if not lookup.ok:
            return EvasionAttempt(strategy.name, domain, False,
                                  "alternate resolution failed")
        dst_ip = lookup.ips[0]
        result = vantage.fetch_domain(domain, ip=dst_ip)
        return _judge(strategy, domain, result, reference)

    if dst_ip is None:
        dst_ip = world.hosting.ip_for(domain, region="in")
        if dst_ip is None:
            return EvasionAttempt(strategy.name, domain, False, "no address")

    if strategy.kind == CLIENT:
        firewall = strategy.build_firewall(dst_ip)
        saved = vantage.host.firewall
        vantage.host.firewall = firewall
        try:
            result = vantage.fetch_domain(domain, ip=dst_ip)
            # Let the late genuine response and stray injections drain
            # while the rules are still installed.
            vantage.settle(1.0)
        finally:
            vantage.host.firewall = saved
        return _judge(strategy, domain, result, reference)

    spec = strategy.spec_for(domain)
    capture_mark = len(vantage.host.capture)
    result = vantage.fetch_domain(domain, ip=dst_ip, spec=spec,
                                  segment_size=strategy.segment_size)
    attempt = _judge(strategy, domain, result, reference)
    if attempt.success:
        # A wiretap box that *did* trigger may simply have lost the
        # race this time; its injection still shows up (late) on the
        # wire.  A request-crafting strategy only counts as working
        # when no censorship artifact ever appears.
        vantage.settle(2.6)
        if _late_injection_observed(vantage.host, capture_mark, dst_ip):
            return EvasionAttempt(strategy.name, domain, False,
                                  "late injected notification observed")
    return attempt


def _late_injection_observed(host, mark: int, dst_ip: str) -> bool:
    for entry in host.capture.entries[mark:]:
        packet = entry.packet
        if (entry.direction == "rx" and packet.is_tcp
                and packet.src == dst_ip and packet.tcp.payload
                and looks_like_block_page(packet.tcp.payload)):
            return True
    return False


def _judge(strategy: EvasionStrategy, domain: str,
           result: Optional[FetchResult], reference) -> EvasionAttempt:
    if result is None:
        return EvasionAttempt(strategy.name, domain, False,
                              "resolution failed")
    for response in result.responses:
        if looks_like_block_page(response.body):
            return EvasionAttempt(strategy.name, domain, False,
                                  "block page received")
    reference_response = reference.first_response
    for response in result.responses:
        # Success = the site behaves exactly as it does uncensored —
        # for HTTPS-only sites that is the genuine 301 to https://.
        if (response.status == reference_response.status
                and same_site_content(response.body,
                                      reference_response.body)):
            return EvasionAttempt(strategy.name, domain, True,
                                  "real content rendered")
    if result.got_rst and not result.ok:
        return EvasionAttempt(strategy.name, domain, False, "reset")
    return EvasionAttempt(strategy.name, domain, False,
                          f"outcome={result.outcome()}")


def evaluate_matrix(
    world,
    isp_name: str,
    domains: Iterable[str],
    strategies: Optional[List[EvasionStrategy]] = None,
) -> EvasionMatrix:
    """Build the strategy-effectiveness matrix for one ISP."""
    vantage = VantagePoint.inside(world, isp_name)
    tor = TorCircuit(world)
    if strategies is None:
        strategies = STRATEGIES
    matrix = EvasionMatrix(isp=isp_name)
    for domain in domains:
        for strat in strategies:
            matrix.record(attempt_strategy(world, vantage, domain, strat,
                                           tor=tor))
    return matrix


def evade_all(
    world,
    isp_name: str,
    domains: Iterable[str],
    strategies: Optional[List[EvasionStrategy]] = None,
) -> Dict[str, Optional[str]]:
    """For every blocked domain, the first strategy that unblocks it
    (None if nothing worked — the paper found none such)."""
    vantage = VantagePoint.inside(world, isp_name)
    tor = TorCircuit(world)
    if strategies is None:
        strategies = STRATEGIES
    winners: Dict[str, Optional[str]] = {}
    for domain in domains:
        winners[domain] = None
        for strat in strategies:
            attempt = attempt_strategy(world, vantage, domain, strat,
                                       tor=tor)
            if attempt.success:
                winners[domain] = strat.name
                break
    return winners
