"""Table 3 — collateral damage within Indian ISPs.

From a client in each non-censoring stub ISP, fetch the PBW list and
attribute every censorship event to the neighbouring transit ISP that
caused it (notification fingerprints; path heuristics for covert
resets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.measure.collateral import (
    CollateralReport,
    measure_collateral_express,
)
from ..isps.profiles import COLLATERAL_ISPS
from .common import (
    Degradation,
    domain_sample,
    format_table,
    get_world,
    run_degradable,
)

#: Paper values: stub -> {neighbour: blocked count}.
PAPER_TABLE3 = {
    "nkn": {"vodafone": 69, "tata": 8},
    "sify": {"tata": 142, "airtel": 2},
    "siti": {"airtel": 110},
    "mtnl": {"tata": 134, "airtel": 25},
    "bsnl": {"tata": 156, "airtel": 1},
}


@dataclass
class Table3Result:
    reports: Dict[str, CollateralReport] = field(default_factory=dict)
    degradation: Degradation = field(default_factory=Degradation)

    def counts(self, stub: str) -> Dict[str, int]:
        return self.reports[stub].counts()

    def dominant_neighbour(self, stub: str) -> Optional[str]:
        counts = self.counts(stub)
        if not counts:
            return None
        return max(counts, key=counts.get)

    def render(self) -> str:
        headers = ["Stub ISP", "Neighbours (measured)", "paper"]
        body = []
        for stub, report in self.reports.items():
            measured = ", ".join(
                f"{neighbour} ({count})"
                for neighbour, count in sorted(report.counts().items(),
                                               key=lambda kv: -kv[1]))
            paper = ", ".join(
                f"{neighbour} ({count})"
                for neighbour, count in PAPER_TABLE3.get(stub, {}).items())
            body.append([stub, measured or "-", paper])
        table = format_table(
            headers, body,
            title="Table 3: Collateral damage from censorious neighbours")
        extra = self.degradation.describe()
        return table + ("\n" + extra if extra else "")


def run(world=None, domains: Optional[List[str]] = None,
        stubs=COLLATERAL_ISPS) -> Table3Result:
    """Regenerate Table 3."""
    if world is None:
        world = get_world()
    if domains is None:
        domains = domain_sample(world)
    result = Table3Result()
    for stub in stubs:
        report = run_degradable(result.degradation, f"collateral@{stub}",
                                measure_collateral_express, world, stub,
                                domains)
        if report is not None:
            result.reports[stub] = report
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
