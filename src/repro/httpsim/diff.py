"""Content comparison utilities.

The paper compares HTTP responses two different ways:

* OONI's ``web_connectivity`` rules — body-length proportion, header
  *names* equality, title-tag comparison (section 6.2);
* the authors' own approach — a difflib ratio over response *bodies*
  only, with threshold 0.3, followed by manual verification
  (section 3.4-II).

Both comparisons live here so the two detectors share one vocabulary.
"""

from __future__ import annotations

from difflib import SequenceMatcher
from typing import Optional

from .message import HTTPResponse

#: The threshold the authors used for their body diff (section 3.1).
AUTHORS_DIFF_THRESHOLD = 0.3

#: OONI's body-length proportion threshold (web_connectivity.py).
OONI_BODY_PROPORTION_THRESHOLD = 0.7


def body_difference(a: bytes, b: bytes) -> float:
    """1 − difflib similarity ratio of two bodies (0 = identical)."""
    if not a and not b:
        return 0.0
    matcher = SequenceMatcher(None,
                              a.decode("latin-1", "replace"),
                              b.decode("latin-1", "replace"))
    return 1.0 - matcher.ratio()


def response_body_difference(a: Optional[HTTPResponse],
                             b: Optional[HTTPResponse]) -> float:
    """Body difference between two responses; missing response = 1.0."""
    if a is None or b is None:
        return 1.0
    return body_difference(a.body, b.body)


def body_length_proportion(a: Optional[HTTPResponse],
                           b: Optional[HTTPResponse]) -> float:
    """min(len)/max(len) of the two bodies — OONI's first check."""
    if a is None or b is None:
        return 0.0
    la, lb = len(a.body), len(b.body)
    if la == 0 and lb == 0:
        return 1.0
    longer = max(la, lb)
    if longer == 0:
        return 1.0
    return min(la, lb) / longer


def header_names_match(a: Optional[HTTPResponse],
                       b: Optional[HTTPResponse]) -> bool:
    """OONI's second check: the *sets of header field names* match."""
    if a is None or b is None:
        return False
    return (
        {name.lower() for name in a.header_names()}
        == {name.lower() for name in b.header_names()}
    )


def titles_comparable(a: Optional[HTTPResponse],
                      b: Optional[HTTPResponse]) -> bool:
    """OONI compares titles only when both exist and at least one word
    in each is >= 5 characters long (section 6.2)."""
    if a is None or b is None:
        return False
    title_a, title_b = a.title(), b.title()
    if title_a is None or title_b is None:
        return False
    has_long_a = any(len(word) >= 5 for word in title_a.split())
    has_long_b = any(len(word) >= 5 for word in title_b.split())
    return has_long_a and has_long_b


def titles_match(a: HTTPResponse, b: HTTPResponse) -> bool:
    """First-word title comparison, as OONI does."""
    words_a = (a.title() or "").split()
    words_b = (b.title() or "").split()
    if not words_a or not words_b:
        return False
    return words_a[0].lower() == words_b[0].lower()
