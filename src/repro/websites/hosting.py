"""Deploying the corpus into the simulated Internet.

Creates the hosting substrate — content farms, CDN edges, parking
providers — attaches them behind a given core router, registers every
site in the global DNS with realistic address structure, and returns a
deployment object the measurement layer can query for ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dnssim.zones import GlobalDNS, REGIONS
from ..httpsim.parsing import ParsedRequest
from ..httpsim.server import OriginServer
from ..netsim.addressing import PrefixAllocator
from ..netsim.devices import Host
from ..netsim.engine import Network
from .content import PARKING_PROVIDERS, page_response, parked_response
from .corpus import Corpus, Website

#: Number of shared-hosting farm hosts.
FARM_COUNT = 24
#: Number of sites sharing one address on a shared-hosting farm.
SHARED_SITES_PER_IP = 4

HOSTING_ASN_BASE = 60000


@dataclass
class HostingDeployment:
    """Where every site ended up."""

    network: Network
    global_dns: GlobalDNS
    farms: List[Host] = field(default_factory=list)
    cdn_edges: Dict[str, Host] = field(default_factory=dict)
    parking_hosts: Dict[str, Host] = field(default_factory=dict)
    origin_servers: Dict[str, OriginServer] = field(default_factory=dict)
    https_servers: Dict[str, object] = field(default_factory=dict)
    #: Prefixes whose clients are served the "in" regional variants
    #: (parking-page localization); the world assembler appends every
    #: Indian ISP pool here after building it.
    indian_prefixes: List = field(default_factory=list)

    def client_region(self, client_ip: str) -> str:
        for prefix in self.indian_prefixes:
            if prefix.contains(client_ip):
                return "in"
        return "us"
    #: domain -> the address a client in `region` should reach.
    regional_ip: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def authoritative_ips(self, domain: str) -> List[str]:
        """Every legitimate address for *domain*, any region."""
        return self.global_dns.all_addresses(domain)

    def ip_for(self, domain: str, region: str = "us") -> Optional[str]:
        per_region = self.regional_ip.get(domain)
        if per_region is None:
            return None
        return per_region.get(region) or next(iter(per_region.values()), None)


def deploy_corpus(
    network: Network,
    corpus: Corpus,
    global_dns: GlobalDNS,
    attach_router: str,
    allocator: PrefixAllocator,
    *,
    seed: int = 1808,
    link_delay: float = 0.004,
) -> HostingDeployment:
    """Build the hosting substrate and register all corpus sites."""
    rng = random.Random(seed)
    deployment = HostingDeployment(network=network, global_dns=global_dns)

    _build_farms(network, deployment, attach_router, allocator, link_delay)
    _build_cdn(network, deployment, attach_router, allocator, link_delay)
    _build_parking(network, deployment, attach_router, allocator, link_delay)

    shared_slots: List[dict] = []  # currently-filling shared-hosting slot
    for site in corpus:
        if site.hosting == "dead":
            _host_dead_site(site, deployment, rng)
        elif site.hosting == "cdn":
            _host_cdn_site(site, deployment, allocator)
        elif site.hosting == "shared":
            _host_shared_site(site, deployment, allocator, rng, shared_slots)
        else:
            _host_normal_site(site, deployment, allocator, rng)
    return deployment


# ---------------------------------------------------------------------------
# Substrate construction
# ---------------------------------------------------------------------------

def _build_farms(network, deployment, attach_router, allocator, delay):
    for index in range(FARM_COUNT):
        ip = allocator.allocate_address()
        host = network.add_host(f"farm{index}", ip,
                                asn=HOSTING_ASN_BASE + index)
        network.link(host.name, attach_router, delay=delay)
        server = OriginServer(name=host.name)
        server.install(host)
        deployment.farms.append(host)
        deployment.origin_servers[host.name] = server


def _build_cdn(network, deployment, attach_router, allocator, delay):
    for region in REGIONS:
        ip = allocator.allocate_address()
        host = network.add_host(f"cdn-{region}", ip,
                                asn=HOSTING_ASN_BASE + 500)
        network.link(host.name, attach_router, delay=delay)
        server = OriginServer(name=host.name)
        server.install(host)
        deployment.cdn_edges[region] = host
        deployment.origin_servers[host.name] = server


def _build_parking(network, deployment, attach_router, allocator, delay):
    for provider in PARKING_PROVIDERS:
        ip = allocator.allocate_address()
        host = network.add_host(f"park-{provider}", ip,
                                asn=HOSTING_ASN_BASE + 900)
        network.link(host.name, attach_router, delay=delay)
        server = OriginServer(name=host.name)
        server.install(host)
        deployment.parking_hosts[provider] = host
        deployment.origin_servers[host.name] = server


# ---------------------------------------------------------------------------
# Per-site hosting
# ---------------------------------------------------------------------------

def _region_of_host(host: Host) -> str:
    name = host.name
    if name.startswith("cdn-"):
        return name.split("-", 1)[1]
    return "us"


def _normal_handler(site: Website, region: str):
    serial = {"n": 0}

    def handler(request: ParsedRequest, client_ip: str):
        serial["n"] += 1
        # Dynamic pages change per fetch; static ones never do.
        nonce = serial["n"] if site.dynamic else 0
        return page_response(site, region=region, nonce=nonce)

    return handler


def _host_normal_site(site, deployment, allocator, rng):
    farm = rng.choice(deployment.farms)
    ip = allocator.allocate_address()
    farm.add_ip(ip)
    server = deployment.origin_servers[farm.name]
    if site.https:
        _host_https_site(site, deployment, farm, server)
    else:
        server.add_domain(site.domain, _normal_handler(site, "us"))
    deployment.global_dns.add_simple(site.domain, [ip])
    deployment.regional_ip[site.domain] = {r: ip for r in REGIONS}


def _host_https_site(site, deployment, farm, http_server):
    """TLS-served site: port 443 carries the content, port 80 only a
    redirect — so middlebox censorship has no HTTP payload to match."""
    from ..httpsim.https import HTTPSOriginServer
    from ..httpsim.message import make_response

    def redirect_handler(request: ParsedRequest, client_ip: str,
                         domain=site.domain):
        return make_response(
            301,
            (f"<html><body>Moved to https://{domain}/"
             f"</body></html>").encode("latin-1"),
            extra_headers=(("Location", f"https://{domain}/"),),
        )

    http_server.add_domain(site.domain, redirect_handler)

    https_server = deployment.https_servers.get(farm.name)
    if https_server is None:
        https_server = HTTPSOriginServer(name=f"{farm.name}-tls")
        https_server.install(farm)
        deployment.https_servers[farm.name] = https_server

    def tls_handler(sni: str, client_ip: str, s=site):
        return page_response(s, region="us")

    https_server.add_domain(site.domain, tls_handler)


def _host_shared_site(site, deployment, allocator, rng, shared_slots):
    # ``shared_slots`` holds the currently-filling slot: several sites
    # deliberately share one address, the legitimate-shared-hosting case
    # the authors' frequency analysis must not misfire on.
    if not shared_slots or shared_slots[0]["count"] >= SHARED_SITES_PER_IP:
        farm = rng.choice(deployment.farms)
        ip = allocator.allocate_address()
        farm.add_ip(ip)
        shared_slots[:] = [{"ip": ip, "farm": farm.name, "count": 0}]
    slot = shared_slots[0]
    slot["count"] += 1
    server = deployment.origin_servers[slot["farm"]]
    server.add_domain(site.domain, _normal_handler(site, "us"))
    deployment.global_dns.add_simple(site.domain, [slot["ip"]])
    deployment.regional_ip[site.domain] = {r: slot["ip"] for r in REGIONS}


def _host_cdn_site(site, deployment, allocator):
    by_region: Dict[str, List[str]] = {}
    for region, edge in deployment.cdn_edges.items():
        ip = allocator.allocate_address()
        edge.add_ip(ip)
        server = deployment.origin_servers[edge.name]
        server.add_domain(site.domain, _normal_handler(site, region))
        by_region[region] = [ip]
    deployment.global_dns.add_regional(site.domain, by_region)
    deployment.regional_ip[site.domain] = {
        region: ips[0] for region, ips in by_region.items()
    }


def _host_dead_site(site, deployment, rng):
    provider = rng.choice(PARKING_PROVIDERS)
    park_host = deployment.parking_hosts[provider]
    server = deployment.origin_servers[park_host.name]

    def handler(request: ParsedRequest, client_ip: str,
                domain=site.domain, provider=provider):
        # Parking pages localize by requester origin: clients inside
        # the (late-registered) Indian ISP prefixes see the "in" ads.
        region = deployment.client_region(client_ip)
        return parked_response(domain, provider, region)

    server.add_domain(site.domain, handler)
    ip = park_host.ip
    deployment.global_dns.add_simple(site.domain, [ip])
    deployment.regional_ip[site.domain] = {r: ip for r in REGIONS}
