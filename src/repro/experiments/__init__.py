"""repro.experiments — one module per paper table/figure/finding.

Each module exposes ``run(world=None, ...)`` returning a result object
with a ``render()`` method, plus ``PAPER_*`` constants carrying the
published values for side-by-side comparison.  The benchmark harness
under ``benchmarks/`` and the examples call straight into these.

| Module              | Reproduces                                     |
|---------------------|------------------------------------------------|
| table1_ooni         | Table 1 (OONI precision/recall)                |
| table2_http         | Table 2 (HTTP coverage, box types, blocked)    |
| table3_collateral   | Table 3 (collateral damage)                    |
| fig2_dns            | Figure 2 (DNS resolver consistency)            |
| fig5_http           | Figure 5 (middlebox path consistency)          |
| trigger_analysis    | §3.4-III/IV (what triggers censorship)         |
| dns_mechanism       | §3.2-III (poisoning vs injection)              |
| tcpip_filtering     | §3.3 (no TCP/IP filtering)                     |
| statefulness        | §4.2.1 caveat (handshake gating, flow timeout) |
| session_dynamics    | §4.2.1/§6.3 (session-table capacity/residual)  |
| evasion_matrix      | §5 (anti-censorship effectiveness)             |
| ooni_failures       | §3.1/§6.2 (anatomy of OONI's errors)           |
| population_scale    | Table 2 / §5 at population scale (cohorts)     |
"""

from . import (
    common,
    dns_mechanism,
    evasion_matrix,
    fig2_dns,
    fig5_http,
    https_filtering,
    idiosyncrasies,
    ooni_failures,
    population_scale,
    session_dynamics,
    statefulness,
    table1_ooni,
    table2_http,
    table3_collateral,
    tcpip_filtering,
    trigger_analysis,
)
from .common import (
    clear_world_cache,
    domain_sample,
    format_table,
    get_world,
)

#: CLI/campaign experiment key -> module.  The campaign runner walks
#: this registry; every module exposes ``units()`` and ``CAMPAIGN``.
EXPERIMENT_MODULES = {
    "table1": table1_ooni,
    "table2": table2_http,
    "table3": table3_collateral,
    "fig2": fig2_dns,
    "fig5": fig5_http,
    "trigger": trigger_analysis,
    "dns-mechanism": dns_mechanism,
    "tcpip": tcpip_filtering,
    "statefulness": statefulness,
    "session-dynamics": session_dynamics,
    "population-scale": population_scale,
    "evasion": evasion_matrix,
    "ooni-failures": ooni_failures,
    "https": https_filtering,
    "idiosyncrasies": idiosyncrasies,
}

__all__ = [
    "EXPERIMENT_MODULES",
    "clear_world_cache",
    "common",
    "dns_mechanism",
    "domain_sample",
    "evasion_matrix",
    "fig2_dns",
    "fig5_http",
    "format_table",
    "https_filtering",
    "idiosyncrasies",
    "get_world",
    "ooni_failures",
    "population_scale",
    "session_dynamics",
    "statefulness",
    "table1_ooni",
    "table2_http",
    "table3_collateral",
    "tcpip_filtering",
    "trigger_analysis",
]
