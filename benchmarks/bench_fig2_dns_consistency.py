"""Figure 2 — consistency of DNS resolvers in MTNL and BSNL.

Paper shape asserted: both government ISPs run poisoned resolvers; MTNL
massively more (hundreds vs a handful), with far higher coverage and
per-site consistency; sites are blocked by a larger share of MTNL's
poisoned resolvers than BSNL's.
"""

from repro.experiments import fig2_dns

from .conftest import run_once


def test_fig2_dns_consistency(benchmark, world, domains, record_output):
    result = run_once(benchmark, lambda: fig2_dns.run(world, domains))
    text = result.render()
    for isp in result.scans:
        text += "\n\n" + result.render_series(isp, limit=15)
    record_output("fig2_dns_consistency", text)

    mtnl = result.scans["mtnl"]
    bsnl = result.scans["bsnl"]

    # Scale of the deployments (paper: 383 vs 17 poisoned).
    assert len(mtnl.censorious) > 300
    assert 5 <= len(bsnl.censorious) <= 40
    assert len(mtnl.censorious) > 10 * len(bsnl.censorious)

    # Coverage: MTNL high, BSNL low (paper: 77% vs 9.3%).
    assert mtnl.coverage > 0.6
    assert bsnl.coverage < 0.2

    # Consistency: MTNL ~42%, BSNL ~7.5%.
    assert 0.30 < result.consistency["mtnl"] < 0.55
    assert result.consistency["bsnl"] < 0.20
    assert result.consistency["mtnl"] > 3 * result.consistency["bsnl"]

    # The Figure 2 series: MTNL's per-site blocking percentages
    # dominate BSNL's on average.
    mtnl_avg = sum(p for _, p in result.series["mtnl"]) / max(
        1, len(result.series["mtnl"]))
    bsnl_avg = sum(p for _, p in result.series["bsnl"]) / max(
        1, len(result.series["bsnl"]))
    assert mtnl_avg > bsnl_avg
