"""``repro serve``: a crash-safe, multi-tenant measurement service.

A long-lived daemon wrapping the campaign runner:

* named tenants submit campaigns over local HTTP/JSON; submissions
  land in per-tenant spool directories *before* they are acknowledged,
  so an accepted campaign survives any crash;
* a weighted fair-share scheduler (:mod:`.scheduler`) dispatches
  queued campaigns onto a bounded worker-slot budget, with per-tenant
  quotas and deterministic 429-style rejections;
* workers keep hot worlds resident (:mod:`repro.runner.worldpool`),
  so units skip the per-unit world rebuild;
* live TraceBus/metrics events stream per run over SSE (:mod:`.sse`),
  and ``/healthz`` / ``/readyz`` report real signals (:mod:`.health`);
* SIGTERM drains gracefully — stop admitting, finish the units in
  flight, journal them, exit 0; SIGKILL is survived by the boot-time
  spool scan (:mod:`.recovery`), which replays hash-chained journals
  through the ordinary ``--resume`` machinery and re-enqueues
  unfinished campaigns.

See ``docs/SERVICE.md`` for the API and the recovery state machine.
"""

from .app import Service, ServiceConfig
from .recovery import CampaignJob, Spool
from .scheduler import AdmissionError, FairScheduler
from .tenants import TenantConfig, parse_tenant_spec

__all__ = [
    "AdmissionError",
    "CampaignJob",
    "FairScheduler",
    "Service",
    "ServiceConfig",
    "Spool",
    "TenantConfig",
    "parse_tenant_spec",
]
