"""Collateral damage measurement (section 4.3, Table 3).

From a client inside a *non-censoring* stub ISP, fetch every PBW and
attribute each censorship event to the neighbouring ISP whose transit
caused it.  Attribution follows section 6.1's heuristics: the
notification page's fingerprint identifies the censoring ISP; covert
resets are attributed by probing which transit the path hashes to.

The express variant walks paths and asks the triggering box directly
(fast, used for the Table 3 bench); the packet-level variant does real
fetches with fingerprint attribution (used by tests and examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from ...middlebox.notification import identify_isp, looks_like_block_page
from ...netsim.errors import NetSimError
from ..vantage import VantagePoint
from .fastprobe import canonical_payload, express_http_probe


@dataclass
class CollateralReport:
    """Which neighbours censor a stub's traffic, and what they block."""

    stub: str
    #: neighbour ISP -> domains it blocked for this stub's client.
    by_neighbour: Dict[str, Set[str]] = field(default_factory=dict)
    unattributed: Set[str] = field(default_factory=set)

    def add(self, neighbour: Optional[str], domain: str) -> None:
        if neighbour is None:
            self.unattributed.add(domain)
        else:
            self.by_neighbour.setdefault(neighbour, set()).add(domain)

    def counts(self) -> Dict[str, int]:
        return {neighbour: len(domains)
                for neighbour, domains in sorted(self.by_neighbour.items())}

    @property
    def total_censored(self) -> int:
        return (sum(len(d) for d in self.by_neighbour.values())
                + len(self.unattributed))


def measure_collateral_express(
    world,
    stub_name: str,
    domains: Optional[Iterable[str]] = None,
) -> CollateralReport:
    """Express campaign: every PBW fetched once from the stub client."""
    vantage = VantagePoint.inside(world, stub_name)
    if domains is None:
        domains = world.corpus.domains()
    report = CollateralReport(stub=stub_name)
    for domain in domains:
        dst_ip = world.hosting.ip_for(domain, region="in")
        if dst_ip is None:
            continue
        verdict = express_http_probe(
            world.network, vantage.host, dst_ip, canonical_payload(domain))
        if verdict.censored:
            report.add(verdict.box_isp, domain)
    return report


def measure_collateral_fetch(
    world,
    stub_name: str,
    domains: Iterable[str],
    *,
    attempts: int = 3,
) -> CollateralReport:
    """Packet-level campaign with fingerprint attribution.

    Covert resets carry no fingerprint; they are attributed by checking
    which neighbour's address space the poisoned path enters (the
    section 6.1 path-segment heuristic), falling back to unattributed.
    """
    vantage = VantagePoint.inside(world, stub_name)
    report = CollateralReport(stub=stub_name)
    for domain in domains:
        dst_ip = world.hosting.ip_for(domain, region="in")
        if dst_ip is None:
            continue
        neighbour, censored = _fetch_and_attribute(
            world, vantage, domain, dst_ip, attempts)
        if censored:
            report.add(neighbour, domain)
    return report


def _fetch_and_attribute(world, vantage, domain, dst_ip, attempts):
    resets = 0
    for _ in range(attempts):
        result = vantage.fetch_domain(domain, ip=dst_ip)
        if result is None:
            return None, False
        response = result.first_response
        if response is not None and looks_like_block_page(response.body):
            return identify_isp(response.body), True
        if result.got_rst and not result.ok:
            resets += 1
            continue
        if response is not None:
            return None, False
        world.network.run(until=world.network.now + 0.2)
    if resets == attempts:
        return _attribute_by_path(world, vantage, dst_ip), True
    return None, False


def _attribute_by_path(world, vantage, dst_ip) -> Optional[str]:
    """Which censoring neighbour's address space does the path enter?"""
    try:
        path = world.network.path_to(vantage.host, dst_ip)
    except NetSimError:
        return None
    stub = world.isp_owning(vantage.host.ip)
    for node in path[1:-1]:
        if not node.ips:
            continue
        owner = world.isp_owning(node.ip)
        if owner is not None and owner != stub:
            if world.isp(owner).profile.censors_http:
                return owner
    return None
