"""End-to-end acceptance: SIGKILL, recovery, SIGTERM drain, bytes.

The scenario the service exists for::

    boot → submit (two tenants) → SIGKILL mid-run
         → boot → recovery resumes → SIGTERM mid-resume (drain, rc 0)
         → boot → recovery finishes → drain
         → journals and tables byte-identical to single-shot batch runs

Every daemon generation is a real subprocess; every kill is a real
signal.  The byte comparison at the end is against plain
``repro campaign`` batch runs of the same submissions.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

ALICE = {"experiments": ["tcpip", "table3"], "seed": 7, "scale": 0.05,
         "fraction": 1.0, "workers": 2}
BOB = {"experiments": ["tcpip"], "seed": 9, "scale": 0.05,
       "fraction": 1.0, "workers": 1}


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__),
                                     "..", "..", "src")
    env["PYTHONHASHSEED"] = "0"
    env["REPRO_BENCH_FRACTION"] = "1.0"
    return env


def _boot(cwd):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--spool", "spool", "--workers", "3",
         "--tenant", "alice", "--tenant", "bob"],
        cwd=str(cwd), env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    endpoint = os.path.join(str(cwd), "spool", "service.json")
    deadline = time.time() + 30
    while time.time() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"serve died at boot: {proc.stdout.read()}")
        try:
            with open(endpoint, encoding="utf-8") as fh:
                advertised = json.load(fh)
            if advertised.get("pid") != proc.pid:
                raise OSError("stale endpoint file")
            port = advertised["port"]
            _request(port, "GET", "/healthz", timeout=3)
            return proc, port
        except (OSError, ValueError, KeyError):
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("serve did not come up")


def _request(port, method, path, body=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port,
                                      timeout=timeout)
    try:
        conn.request(method, path,
                     json.dumps(body) if body is not None else None)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _journal_lines(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return sum(1 for _ in fh)
    except OSError:
        return 0


def _wait(predicate, timeout, what):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def _state(cwd, tenant, run_id):
    path = os.path.join(str(cwd), "spool", tenant, run_id,
                        "status.json")
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh).get("state")
    except (OSError, ValueError):
        return None


def _read(path):
    with open(path, "rb") as fh:
        return fh.read()


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    cwd = tmp_path_factory.mktemp("serve-acceptance")
    alice_journal = os.path.join(
        str(cwd), "spool", "alice", "c000001", "run", "journal.jsonl")

    # generation 1: submit both tenants, SIGKILL mid-run
    proc, port = _boot(cwd)
    status, body = _request(port, "POST",
                            "/v1/tenants/alice/campaigns", ALICE)
    assert status == 202 and body["run_id"] == "c000001"
    status, body = _request(port, "POST",
                            "/v1/tenants/bob/campaigns", BOB)
    assert status == 202 and body["run_id"] == "c000001"
    _wait(lambda: _journal_lines(alice_journal) >= 3, 120,
          "three journaled records before the kill")
    killed_at = _journal_lines(alice_journal)
    proc.kill()
    proc.wait(timeout=30)

    # generation 2: recovery resumes; SIGTERM mid-resume drains
    proc, port = _boot(cwd)
    status, body = _request(port, "GET", "/v1/status")
    assert status == 200
    _wait(lambda: _journal_lines(alice_journal) > killed_at, 120,
          "recovery to make progress past the killed run")
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=120)
    drain_rc = proc.returncode

    # generation 3: finish everything, then drain cleanly
    proc, port = _boot(cwd)
    _wait(lambda: _state(cwd, "alice", "c000001") == "complete"
          and _state(cwd, "bob", "c000001") == "complete",
          240, "both campaigns to complete after recovery")
    status, _ = _request(port, "POST", "/v1/drain")
    assert status == 202
    final_out, _ = proc.communicate(timeout=120)
    return {"cwd": cwd, "drain_rc": drain_rc,
            "drain_out": out, "final_rc": proc.returncode,
            "final_out": final_out}


class TestKillRestartDrain:
    def test_sigterm_drain_exits_zero(self, scenario):
        assert scenario["drain_rc"] == 0
        assert "drained, exiting" in scenario["drain_out"]

    def test_final_drain_exits_zero(self, scenario):
        assert scenario["final_rc"] == 0

    def test_journals_and_tables_byte_identical_to_batch(
            self, scenario, tmp_path):
        """The whole point: a campaign that survived SIGKILL, resume,
        SIGTERM drain, and a second resume produces the same bytes as
        one uninterrupted batch run."""
        cwd = scenario["cwd"]
        for tenant, sub in (("alice", ALICE), ("bob", BOB)):
            ref = tmp_path / f"ref-{tenant}"
            batch = subprocess.run(
                [sys.executable, "-m", "repro", "campaign",
                 *sub["experiments"], "--seed", str(sub["seed"]),
                 "--scale", str(sub["scale"]),
                 "--run-dir", str(ref)],
                env=_env(), capture_output=True, text=True)
            assert batch.returncode == 0, batch.stderr
            run = os.path.join(str(cwd), "spool", tenant, "c000001",
                               "run")
            for name in ("journal.jsonl", "tables.txt"):
                assert _read(os.path.join(run, name)) == \
                    _read(str(ref / name)), f"{tenant} {name}"

    def test_over_quota_rejection_survives_restart(self, scenario,
                                                   tmp_path_factory):
        """Quota rejections are deterministic across daemon
        generations: same request, same bytes, no spool residue."""
        cwd = tmp_path_factory.mktemp("serve-quota")
        proc, port = _boot(cwd)
        try:
            bodies = set()
            for _ in range(2):
                status, body = _request(
                    port, "POST", "/v1/tenants/bob/campaigns",
                    dict(BOB, workers=64))
                assert status == 429
                bodies.add(json.dumps(body, sort_keys=True))
            assert len(bodies) == 1
            assert os.listdir(os.path.join(str(cwd), "spool",
                                           "bob")) == []
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=60)
