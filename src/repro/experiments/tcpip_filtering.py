"""Section 3.3 — TCP/IP packet-filtering test.

Five handshakes, two virtual seconds apart, for Tor-reachable PBWs
from inside every ISP.  The paper's (negative) finding: no Indian ISP
filters on network/transport headers — and neither does any deployment
in this world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.measure.tcpip import TCPIPFilterReport, detect_tcpip_filtering
from ..isps.profiles import OONI_TESTED_ISPS
from .common import (
    TableSpec,
    Unit,
    campaign_payload,
    domain_sample,
    format_table,
    get_world,
)


@dataclass
class TCPIPExperimentResult:
    reports: Dict[str, TCPIPFilterReport] = field(default_factory=dict)

    @property
    def any_filtering(self) -> bool:
        return any(report.any_filtering for report in self.reports.values())

    def render(self) -> str:
        return format_table(list(CAMPAIGN.headers), _body_rows(self),
                            title=CAMPAIGN.title)


#: Campaign decomposition: one resumable unit per tested ISP.
CAMPAIGN = TableSpec(
    title="Section 3.3: TCP/IP filtering test",
    headers=("ISP", "sites tested", "filtered", "finding"),
)


def _body_rows(result: "TCPIPExperimentResult") -> List[List]:
    body = []
    for isp, report in result.reports.items():
        filtered = report.filtered_domains()
        body.append([
            isp, len(report.successes), len(filtered),
            "TCP/IP filtering" if filtered else "none (as in paper)",
        ])
    return body


def units(isps=OONI_TESTED_ISPS):
    """Named measurement units for the campaign runner."""
    for isp in isps:
        yield Unit(isp, _campaign_unit(isp))


def _campaign_unit(isp: str):
    def unit_fn(world, domains):
        result = run(world, domains=domains, isps=(isp,))
        return campaign_payload(_body_rows(result))
    return unit_fn


def run(world=None, domains: Optional[List[str]] = None,
        isps=OONI_TESTED_ISPS, sites_per_isp: int = 25
        ) -> TCPIPExperimentResult:
    """Run the five-handshake test in every ISP."""
    if world is None:
        world = get_world()
    if domains is None:
        domains = domain_sample(world, fraction=None)
    result = TCPIPExperimentResult()
    for isp in isps:
        result.reports[isp] = detect_tcpip_filtering(
            world, isp, domains[:sites_per_isp])
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
