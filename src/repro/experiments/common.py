"""Shared experiment machinery: cached worlds, ground truth, rendering.

Every experiment module exposes ``run(world=None, ...) -> Result`` where
the result carries the measured numbers plus a ``render()`` producing
the paper-style table, and module-level ``PAPER_*`` constants with the
published values for side-by-side comparison.
"""

from __future__ import annotations

import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.measure.fastprobe import (
    canonical_payload,
    express_dns_probe,
    express_http_probe,
)
from ..isps.world import World, build_world
from ..netsim.addressing import is_bogon
from ..netsim.errors import NetSimError
from ..runner.errors import (
    FATAL,
    TRANSIENT,
    TRANSIENT_RETRIES,
    TimeoutDegradation,
    classify_error,
)
from ..runner.units import TableSpec, Unit, campaign_payload  # noqa: F401

#: LRU of built worlds, keyed by ``(seed, scale)``.  Bounded so long
#: campaigns sweeping many seeds/scales don't grow memory without
#: limit; evictions rebuild on the next request (~cheap, determinstic).
_WORLD_CACHE: "OrderedDict[Tuple[int, float], World]" = OrderedDict()

#: Maximum number of worlds kept alive in :data:`_WORLD_CACHE`.
WORLD_CACHE_MAX = 4

#: Environment knob: fraction of the PBW corpus experiment runs sweep.
#: 1.0 regenerates the full tables; smaller values give quick looks.
BENCH_FRACTION_ENV = "REPRO_BENCH_FRACTION"


def get_world(seed: int = 1808, scale: float = 1.0) -> World:
    """A cached full world for experiment runs (bounded LRU)."""
    key = (seed, scale)
    if key in _WORLD_CACHE:
        _WORLD_CACHE.move_to_end(key)
        return _WORLD_CACHE[key]
    world = build_world(seed=seed, scale=scale)
    _WORLD_CACHE[key] = world
    while len(_WORLD_CACHE) > WORLD_CACHE_MAX:
        _WORLD_CACHE.popitem(last=False)
    return world


def clear_world_cache() -> None:
    """Drop every cached world (tests; memory-sensitive campaigns)."""
    _WORLD_CACHE.clear()


def bench_fraction(default: float = 1.0) -> float:
    """The corpus fraction experiments should sweep (env-overridable).

    An unparsable value is *reported*, not silently swallowed: the
    warning names the bad value so a typo in ``REPRO_BENCH_FRACTION``
    can't masquerade as a full-corpus run.
    """
    raw = os.environ.get(BENCH_FRACTION_ENV)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {BENCH_FRACTION_ENV}={raw!r} (not a "
            f"number); using default {default}",
            RuntimeWarning, stacklevel=2)
        return default
    return min(1.0, max(0.01, value))


def domain_sample(world: World, fraction: Optional[float] = None
                  ) -> List[str]:
    """A deterministic, evenly-spread corpus subset."""
    domains = world.corpus.domains()
    if fraction is None:
        fraction = bench_fraction()
    if fraction >= 1.0:
        return domains
    step = max(1, round(1.0 / fraction))
    return domains[::step]


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------

#: Errors an experiment survives by recording a partial entry.  Only
#: simulator failures qualify — programming errors must still crash.
#: (Kept for backward compatibility; the full taxonomy lives in
#: :mod:`repro.runner.errors` and is what :func:`run_degradable` uses.)
DEGRADABLE_ERRORS = (NetSimError,)


@dataclass
class Degradation:
    """Per-experiment record of faults survived instead of crashed on.

    Experiments attach one of these to their result object; a clean run
    leaves it empty, so rendering and comparisons are unchanged unless
    something actually went wrong.  The campaign runner aggregates one
    per run, absorbing timeout and resume accounting as well.
    """

    #: ``(unit, reason)`` for every measurement unit that errored out.
    errors: List[Tuple[str, str]] = field(default_factory=list)
    #: Total client retries spent across the experiment.
    retries: int = 0
    #: Units whose deadline budget expired (hangs converted to data).
    timeouts: List[TimeoutDegradation] = field(default_factory=list)
    #: Units restored from a campaign journal instead of re-measured.
    resumed: int = 0
    #: ``(unit, reason)`` for units quarantined after repeatedly
    #: crashing their worker (see :mod:`repro.runner.supervise`).
    quarantined: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        """Did any unit fail outright (beyond mere retries)?"""
        return bool(self.errors or self.timeouts or self.quarantined)

    def record_error(self, unit: str, reason: str) -> None:
        self.errors.append((unit, reason))

    def record_timeout(self, entry: TimeoutDegradation) -> None:
        self.timeouts.append(entry)

    def record_quarantine(self, unit: str, reason: str) -> None:
        self.quarantined.append((unit, reason))

    def describe(self) -> str:
        """One-paragraph summary for verbose rendering; "" when clean."""
        if not (self.errors or self.retries or self.timeouts
                or self.resumed or self.quarantined):
            return ""
        lines = []
        if self.resumed:
            lines.append(f"resumed: {self.resumed} units from journal")
        if self.retries:
            lines.append(f"degraded: {self.retries} client retries")
        for entry in self.timeouts:
            lines.append(entry.describe())
        for unit, reason in self.errors:
            lines.append(f"partial: {unit}: {reason}")
        for unit, reason in self.quarantined:
            lines.append(f"quarantined: {unit}: {reason}")
        return "\n".join(lines)


def run_degradable(degradation: Degradation, unit: str,
                   fn: Callable, *args, **kwargs) -> Tuple[bool, object]:
    """Run one measurement unit, degrading survivable errors to a record.

    Returns ``(ok, value)``: ``(True, result)`` on success — where
    *result* may legitimately be ``None`` — or ``(False, None)`` after
    recording the failure in *degradation*.  The distinction matters:
    a classifier returning ``None`` means "could not determine", while
    ``ok=False`` means the unit itself died, the experiment-level
    analogue of a vantage lost mid-campaign.

    Failures are routed through the structured taxonomy in
    :mod:`repro.runner.errors`: *transient* errors earn an immediate
    retry (the fault-injector streams advance between attempts),
    *degradable* ones are recorded, and *fatal* ones — programming
    errors — are re-raised.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return True, fn(*args, **kwargs)
        except Exception as exc:
            category = classify_error(exc)
            if category == FATAL:
                raise
            if category == TRANSIENT and attempts <= TRANSIENT_RETRIES:
                continue
            prefix = "[transient] " if category == TRANSIENT else ""
            degradation.record_error(
                unit, f"{prefix}{type(exc).__name__}: {exc}")
            return False, None


# ---------------------------------------------------------------------------
# Ground truth (express — exact modulo wiretap races, which retrying
# measurement defeats anyway; validated against the manual oracle in
# tests/measure/test_groundtruth.py)
# ---------------------------------------------------------------------------

def ground_truth_http(world: World, isp_name: str,
                      domains: Optional[Iterable[str]] = None) -> Set[str]:
    """Sites HTTP-censored for the ISP's client on its direct paths."""
    client = world.client_of(isp_name)
    if domains is None:
        domains = world.corpus.domains()
    censored: Set[str] = set()
    for domain in domains:
        dst_ip = world.hosting.ip_for(domain, region="in")
        if dst_ip is None:
            continue
        verdict = express_http_probe(world.network, client, dst_ip,
                                     canonical_payload(domain))
        if verdict.censored:
            censored.add(domain)
    return censored


def ground_truth_dns(world: World, isp_name: str,
                     domains: Optional[Iterable[str]] = None) -> Set[str]:
    """Sites whose resolution through the client's default resolver is
    manipulated (bogon or ISP-internal answer)."""
    deployment = world.isp(isp_name)
    client = deployment.client
    if domains is None:
        domains = world.corpus.domains()
    censored: Set[str] = set()
    for domain in domains:
        answer = express_dns_probe(world.network, client,
                                   deployment.default_resolver_ip, domain)
        if not answer.ok:
            continue
        for ip in answer.ips:
            if is_bogon(ip) or deployment.pool.contains(ip):
                censored.add(domain)
                break
    return censored


def ground_truth_any(world: World, isp_name: str,
                     domains: Optional[Iterable[str]] = None
                     ) -> Dict[str, str]:
    """domain -> mechanism ("dns" wins over "http", as for a browser)."""
    domains = list(domains) if domains is not None \
        else world.corpus.domains()
    truth: Dict[str, str] = {}
    for domain in ground_truth_http(world, isp_name, domains):
        truth[domain] = "http"
    for domain in ground_truth_dns(world, isp_name, domains):
        truth[domain] = "dns"
    return truth


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Monospace table rendering for experiment outputs."""
    columns = [[str(header)] for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            columns[index].append(_fmt(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row_index in range(1, len(columns[0])):
        lines.append("  ".join(
            columns[col][row_index].ljust(widths[col])
            for col in range(len(columns))))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if isinstance(cell, tuple):
        return "(" + ", ".join(_fmt(c) for c in cell) + ")"
    return str(cell)


#: Public alias: experiments pre-format campaign-unit row cells with
#: this so payloads survive the journal's JSON round trip unchanged
#: (tuples would otherwise come back as lists and render differently).
fmt_cell = _fmt
