"""Cohort specifications: who browses, how much, and when.

A cohort is a *class* of users within one ISP — residential evening
browsers, office daytime traffic, always-on mobile users — described
by its share of the ISP's sessions, the skew of its Zipf browsing mix,
and a diurnal arrival profile.  Everything here is pure arithmetic:
session totals are apportioned with the largest-remainder method, so
per-cohort and per-hour counts always sum exactly to the requested
total and are identical in every process (the property serial-vs-
``--workers`` byte-identity rests on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Relative session arrivals per hour-of-day (0..23), normalized at
#: use.  Shapes follow the usual Indian consumer/enterprise traffic
#: curves: residential peaks 20:00-23:00, office peaks 10:00-17:00,
#: mobile is flatter with a late-evening bulge.
DIURNAL_PROFILES: Dict[str, Tuple[float, ...]] = {
    "residential": (
        2, 1, 1, 1, 1, 2, 3, 4, 5, 5, 5, 5,
        5, 5, 5, 5, 6, 7, 9, 11, 13, 14, 13, 9,
    ),
    "office": (
        1, 1, 1, 1, 1, 1, 2, 4, 8, 12, 13, 13,
        11, 13, 13, 12, 11, 9, 5, 3, 2, 2, 1, 1,
    ),
    "mobile": (
        4, 3, 2, 2, 2, 3, 5, 7, 8, 8, 8, 9,
        9, 8, 8, 8, 8, 9, 10, 11, 12, 12, 10, 7,
    ),
}


@dataclass(frozen=True)
class CohortSpec:
    """One user class: share of the ISP's sessions + behaviour knobs."""

    name: str
    #: Fraction of the ISP's sessions this cohort generates.
    share: float
    #: Zipf exponent of the domain-popularity browsing mix (higher =
    #: more concentrated on popular domains).
    zipf_s: float
    #: Key into :data:`DIURNAL_PROFILES`.
    diurnal: str

    def __post_init__(self) -> None:
        if self.diurnal not in DIURNAL_PROFILES:
            raise ValueError(
                f"unknown diurnal profile {self.diurnal!r}; "
                f"known: {sorted(DIURNAL_PROFILES)}")


#: The default population mix for every ISP.  Shares sum to 1.0.
DEFAULT_COHORTS: Tuple[CohortSpec, ...] = (
    CohortSpec("residential", 0.55, 1.02, "residential"),
    CohortSpec("mobile", 0.35, 1.15, "mobile"),
    CohortSpec("office", 0.10, 0.95, "office"),
)


def apportion(total: int, weights: Sequence[float]) -> List[int]:
    """Split ``total`` across ``weights`` with the largest-remainder
    method.

    Deterministic (ties break on lowest index) and exact: the result
    always sums to ``total``.  Used for sessions-per-cohort and
    sessions-per-hour, so no session is ever lost to rounding.
    """
    if total < 0:
        raise ValueError(f"cannot apportion a negative total ({total})")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        raise ValueError("weights must have a positive sum")
    quotas = [total * weight / weight_sum for weight in weights]
    counts = [int(quota) for quota in quotas]
    shortfall = total - sum(counts)
    # Largest fractional remainders get the leftover units; sort by
    # (-remainder, index) so ties are stable across processes.
    order = sorted(range(len(weights)),
                   key=lambda i: (-(quotas[i] - counts[i]), i))
    for i in order[:shortfall]:
        counts[i] += 1
    return counts


def hourly_sessions(total: int, profile: str) -> List[int]:
    """Sessions per hour-of-day for ``total`` sessions on a profile."""
    return apportion(total, DIURNAL_PROFILES[profile])
