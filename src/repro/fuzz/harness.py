"""Execution harnesses: replay mutants against real simulated stacks.

The http/diff targets run purely on the parsers (no network).  The tcp
and dns targets build a *tiny real world* per iteration — client,
router with an observing tap, origin server / resolvers — so mutants
exercise the actual TCP reassembly, event loop, server connection
handling and resolver logic, not a re-implementation of them.

Each harness returns a :class:`~repro.fuzz.oracles.DiffResult`:
explained disagreement classes plus unexplained violations.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

from ..dnssim.client import dns_lookup
from ..dnssim.message import DNSQuery, reset_qids
from ..dnssim.resolver import ResolverConfig, ResolverService, static_ip_poison
from ..dnssim.zones import GlobalDNS
from ..httpsim.message import make_response
from ..httpsim.parsing import parse_request_unit, split_request_units
from ..httpsim.server import OriginServer
from ..middlebox import WiretapMiddlebox, profile_for
from ..middlebox.triggers import TriggerSpec
from ..netsim.engine import Network
from ..netsim.errors import ConnectionError_
from ..netsim.packets import TCPFlags
from ..netsim.tcp import ESTABLISHED, TCPApp
from .corpus import DECOY_DOMAIN, FUZZ_DOMAIN
from .oracles import (
    BLOCKLIST,
    DISCIPLINES,
    DiffResult,
    classify_evasion,
    classify_overmatch,
    server_serves_blocked,
)

#: Segment schedules: ``[(stream_offset, payload), ...]``.
Schedule = List[Tuple[int, bytes]]

POISON_IP = "10.8.0.99"
_MAX_EVENTS = 500_000


# ---------------------------------------------------------------------------
# TCP target
# ---------------------------------------------------------------------------

class _PortObserver:
    """A wiretap that records every client→server payload packet —
    the per-packet view a real middlebox has of the stream."""

    def __init__(self, server_ip: str, port: int = 80) -> None:
        self.server_ip = server_ip
        self.port = port
        self.payloads: List[bytes] = []

    def attach(self, router) -> None:  # Router.attach_tap protocol
        pass

    def on_copy(self, packet, now, router) -> None:
        if (packet.is_tcp and packet.dst == self.server_ip
                and packet.tcp.dst_port == self.port and packet.tcp.payload):
            self.payloads.append(bytes(packet.tcp.payload))


class _ClientApp(TCPApp):
    def __init__(self) -> None:
        self.connected = False
        self.received = bytearray()
        self.reset = False

    def on_connected(self, conn) -> None:
        self.connected = True

    def on_data(self, conn, data: bytes) -> None:
        self.received.extend(data)

    def on_rst(self, conn) -> None:
        self.reset = True

    def on_fin(self, conn) -> None:
        try:
            conn.close()
        except ConnectionError_:
            pass


def model_reassembly(schedule: Schedule) -> Tuple[bytes, List[bool]]:
    """What the in-order-only receiver accepts, and which segments.

    Mirrors the simulator's documented TCP semantics: a segment is
    accepted iff it starts exactly at ``rcv_nxt``; stale and future
    segments are dropped whole.  The harness *asserts* the real stack
    agrees (the cross-check oracle), so the two cannot drift apart
    silently.
    """
    rcv = 0
    stream = bytearray()
    accepted: List[bool] = []
    for offset, data in schedule:
        if offset == rcv and data:
            stream.extend(data)
            rcv += len(data)
            accepted.append(True)
        else:
            accepted.append(False)
    return bytes(stream), accepted


def run_tcp_schedule(schedule: Schedule) -> DiffResult:
    """Replay one segment schedule through a real client/server pair."""
    result = DiffResult()
    network = Network()
    client = network.add_host("fuzz-client", "10.9.0.1")
    router = network.add_router("fuzz-router", "10.9.0.254")
    server_host = network.add_host("fuzz-server", "10.9.0.80")
    network.link("fuzz-client", "fuzz-router")
    network.link("fuzz-router", "fuzz-server")

    origin = OriginServer("fuzz-origin")
    page = lambda request, ip: make_response(200, b"<html>fuzz</html>")
    origin.add_domain(FUZZ_DOMAIN, page)
    origin.add_domain(DECOY_DOMAIN, page)
    origin.install(server_host, 80)

    observer = _PortObserver("10.9.0.80")
    router.attach_tap(observer)

    app = _ClientApp()
    conn = client.stack.connect("10.9.0.80", 80, app)
    network.run_until_idle(max_events=_MAX_EVENTS)
    if not app.connected:
        result.violations.append(("tcp-handshake", "handshake never completed"))
        return result

    base = conn.snd_nxt
    for offset, data in schedule:
        conn.send_raw_flags(TCPFlags.ACK | TCPFlags.PSH,
                            seq=base + offset, payload=data)
    network.run_until_idle(max_events=_MAX_EVENTS)
    if conn.state == ESTABLISHED:
        conn.close()
    network.run_until_idle(max_events=_MAX_EVENTS)

    stream, accepted = model_reassembly(schedule)
    _check_reassembly(result, origin, stream)
    _diff_tcp(result, origin, observer, schedule, accepted, stream)
    return result


def _complete_units(stream: bytes) -> List[bytes]:
    units = split_request_units(stream)
    if units and not stream.endswith(b"\r\n\r\n"):
        units = units[:-1]
    return units


def _check_reassembly(result: DiffResult, origin: OriginServer,
                      stream: bytes) -> None:
    """The real stack must deliver exactly what the model predicts."""
    expected = _complete_units(stream)
    logged = [unit for _, unit, _ in origin.request_log]
    if logged != expected[:len(logged)]:
        result.violations.append((
            "tcp-reassembly-model-divergence",
            f"server saw {len(logged)} unit(s) diverging from the "
            f"in-order reassembly model",
        ))
        return
    if len(logged) < len(expected):
        requests = [request for _, _, request in origin.request_log]
        closed_early = any(
            request.malformed is not None
            or (request.header("Connection") or "").lower() == "close"
            for request in requests
        ) or any(reason == "late-unit-dropped"
                 for _, _, reason in origin.error_log)
        if not closed_early:
            result.violations.append((
                "tcp-units-lost",
                f"server processed {len(logged)}/{len(expected)} units "
                f"with no close in between",
            ))


def _diff_tcp(result: DiffResult, origin: OriginServer,
              observer: _PortObserver, schedule: Schedule,
              accepted: List[bool], stream: bytes) -> None:
    """Differential oracle over the wire view vs. the served view."""
    units = split_request_units(stream)
    parsed = [parse_request_unit(unit) for unit in units]
    served = [request for _, _, request in origin.request_log]
    blocked = server_serves_blocked(served)
    for name, spec in DISCIPLINES.items():
        matched = any(spec.matched_domain(payload) is not None
                      for payload in observer.payloads)
        if matched == blocked:
            continue
        if blocked and not matched:
            if spec.matched_domain(stream) is not None:
                # The trigger bytes exist contiguously in the stream but
                # never within one packet — the paper's fragmented GET.
                cls: Optional[str] = "fragmentation"
            else:
                cls = classify_evasion(spec, stream, units, parsed)
            kind = "evasion"
        else:
            cls = _classify_tcp_overmatch(spec, schedule, accepted,
                                          stream, units, parsed, origin)
            kind = "overmatch"
        if cls is None:
            result.violations.append((
                f"tcp-diff-{kind}",
                f"{name}: server_blocked={blocked} box_matched={matched} "
                f"— no known class explains it",
            ))
        else:
            result.note(cls)


def _classify_tcp_overmatch(spec: TriggerSpec, schedule: Schedule,
                            accepted: List[bool], stream: bytes,
                            units: List[bytes], parsed, origin: OriginServer
                            ) -> Optional[str]:
    """Box fired on the wire; the server never served blocked content."""
    # Segments the receiver dropped but the box still inspected.
    rcv = 0
    for (offset, data), taken in zip(schedule, accepted):
        if not taken and data and spec.matched_domain(data) is not None:
            return ("stale-retransmission-match" if offset < rcv
                    else "dropped-future-segment")
        if taken:
            rcv += len(data)
    # A packet boundary falling mid-line shows the box a Host line the
    # stream does not actually contain: a truncated value that the next
    # segment continues ("Host: blocked" + "x.else"), or a line
    # *continuation* that looks like a fresh Host line because the
    # packet starts right at "Host:".  Widening the packet's window to
    # whole stream lines removes the illusion; if the match disappears,
    # per-packet DPI was overblocking on a boundary artifact.
    rcv = 0
    for (offset, data), taken in zip(schedule, accepted):
        if not taken:
            continue
        start, end = rcv, rcv + len(data)
        rcv = end
        if spec.matched_domain(data) is None:
            continue
        prev_crlf = stream.rfind(b"\r\n", 0, start)
        line_start = 0 if prev_crlf < 0 else prev_crlf + 2
        next_crlf = stream.find(b"\r\n", end)
        line_end = len(stream) if next_crlf < 0 else next_crlf + 2
        if spec.matched_domain(stream[line_start:line_end]) is None:
            return "segment-boundary-host"
    # Otherwise the trigger bytes made it into the accepted stream:
    # locate the unit and explain why the server did not serve it.
    unit_spec = TriggerSpec(
        blocklist=spec.blocklist,
        exact_keyword_case=spec.exact_keyword_case,
        strict_value_whitespace=spec.strict_value_whitespace,
        inspect_last_host_only=False,
        match_www_alias=spec.match_www_alias,
    )
    complete = len(_complete_units(stream))
    served_count = len(origin.request_log)
    fallback = None
    for index, (unit, request) in enumerate(zip(units, parsed)):
        if unit_spec.matched_domain(unit) is None:
            continue
        if index >= complete:
            return "incomplete-tail-match"
        if index >= served_count:
            fallback = fallback or "post-close-unit"
            continue
        if request.malformed == "duplicate-host":
            return "duplicate-host-400"
        if request.malformed is not None:
            fallback = "matched-malformed-unit"
    return fallback


# ---------------------------------------------------------------------------
# DNS target
# ---------------------------------------------------------------------------

def _blocked_name(qname: str) -> bool:
    if qname in BLOCKLIST:
        return True
    return qname.startswith("www.") and qname[4:] in BLOCKLIST


def run_dns_probe(entry: dict) -> DiffResult:
    """Replay one DNS mutant against honest and poisoned resolvers."""
    result = DiffResult()
    qname = entry.get("qname", "")
    reset_qids(1)

    global_dns = GlobalDNS()
    global_dns.add_simple(FUZZ_DOMAIN, ["95.1.2.3"])
    global_dns.add_simple(DECOY_DOMAIN, ["95.1.2.4"])

    network = Network()
    client = network.add_host("fuzz-dns-client", "10.8.0.1")
    honest_host = network.add_host("fuzz-honest", "10.8.0.53")
    poisoned_host = network.add_host("fuzz-poisoned", "10.8.0.54")
    network.link("fuzz-dns-client", "fuzz-honest")
    network.link("fuzz-dns-client", "fuzz-poisoned")

    honest = ResolverService(global_dns, ResolverConfig(region="in"))
    honest.install(honest_host)
    poisoned = ResolverService(global_dns, ResolverConfig(
        region="in",
        blocklist=frozenset(BLOCKLIST),
        poison_strategy=static_ip_poison(POISON_IP),
    ))
    poisoned.install(poisoned_host)

    # Direct-answer invariant: any explicit qid (including out-of-range
    # mutants) must be echoed verbatim with the qname.
    explicit_qid = entry.get("qid")
    if explicit_qid is not None:
        service = poisoned if entry.get("resolver") == "poisoned" else honest
        response = service.answer(DNSQuery(qname=qname, qid=explicit_qid),
                                  service is poisoned and "10.8.0.54"
                                  or "10.8.0.53")
        if response.qid != explicit_qid or response.qname != qname:
            result.violations.append((
                "dns-echo", f"qid/qname not echoed for qid={explicit_qid}"))

    # On-the-wire lookups: never silent, repeatable, and the honest /
    # poisoned disagreement must be exactly the configured poisoning.
    outcomes = {}
    for label, ip in (("honest", "10.8.0.53"), ("poisoned", "10.8.0.54")):
        first = dns_lookup(network, client, ip, qname)
        second = dns_lookup(network, client, ip, qname)
        for lookup in (first, second):
            if not lookup.responded:
                result.violations.append((
                    "dns-silence", f"{label} resolver never answered"))
                return result
        if (first.outcome, sorted(first.ips)) != (second.outcome,
                                                  sorted(second.ips)):
            result.violations.append((
                "dns-nondeterminism",
                f"{label}: repeated lookup changed outcome"))
        outcomes[label] = (first.outcome, sorted(first.ips))

    if outcomes["honest"] != outcomes["poisoned"]:
        if _blocked_name(qname) and outcomes["poisoned"] == (
                "ok", [POISON_IP]):
            result.note("resolver-poisoning")
        else:
            result.violations.append((
                "dns-diff",
                f"resolvers disagree on {qname!r}: honest="
                f"{outcomes['honest']} poisoned={outcomes['poisoned']} "
                f"— not the configured poisoning",
            ))
    elif _blocked_name(qname):
        result.violations.append((
            "dns-poison-miss",
            f"poisoned resolver failed to poison blocked name {qname!r}"))
    return result


# ---------------------------------------------------------------------------
# Session target
# ---------------------------------------------------------------------------

#: Bounded-box session counters and the disagreement class each names.
_SESSION_CLASSES = (
    ("evicted", "eviction-flush"),
    ("overload_fail_open", "overload-fail-open"),
    ("overload_fail_closed", "overload-fail-closed"),
    ("residual_hits", "residual-block"),
)


def _session_world(*, max_flows: Optional[int] = None,
                   overload: str = "fail-open", eviction: str = "none",
                   residual: float = 0.0):
    """One tiny wiretap deployment with the given session parameters."""
    network = Network()
    client = network.add_host("fz-client", "10.7.0.1")
    router = network.add_router("fz-router", "10.7.0.254")
    server_host = network.add_host("fz-server", "10.7.0.80")
    network.link("fz-client", "fz-router")
    network.link("fz-router", "fz-server")

    origin = OriginServer("fz-origin")
    page = lambda request, ip: make_response(200, b"<html>fuzz</html>")
    origin.add_domain(FUZZ_DOMAIN, page)
    origin.add_domain(DECOY_DOMAIN, page)
    origin.install(server_host, 80)

    box = WiretapMiddlebox(
        "fz-wm", "fuzz", TriggerSpec(blocklist=BLOCKLIST),
        profile_for("airtel"), miss_rate=0.0,
        max_flows=max_flows, overload_policy=overload,
        eviction_policy=eviction, residual_window=residual)
    router.attach_tap(box)
    return SimpleNamespace(network=network, client=client,
                           server_ip="10.7.0.80", box=box)


def _session_counters(box) -> Dict[str, int]:
    return {name: getattr(box.stats, name) for name, _ in _SESSION_CLASSES}


def _replay_session(world, ops) -> Tuple[List[str], List[Dict[str, int]]]:
    """Outcome label plus post-op box-counter snapshot, per op."""
    from ..core.measure.probes import CraftedFlow

    outcomes: List[str] = []
    snapshots: List[Dict[str, int]] = []
    flows: Dict[int, object] = {}
    for op in ops:
        kind = op[0]
        if kind == "open":
            slot = int(op[1])
            stale = flows.pop(slot, None)
            if stale is not None:
                stale.close()
            flow = CraftedFlow(world, world.client, world.server_ip)
            if flow.open(attempts=1):
                flows[slot] = flow
                outcomes.append("ok")
            else:
                flow.close()
                outcomes.append("refused")
        elif kind == "get":
            slot = int(op[1])
            flow = flows.get(slot)
            if flow is None or flow.conn.state != "ESTABLISHED":
                # Never opened, or already torn down by a censorship
                # reaction: nothing left to probe on.
                if flow is not None:
                    flows.pop(slot).close()
                outcomes.append("noflow")
            else:
                domain = FUZZ_DOMAIN if op[2] == "blocked" else DECOY_DOMAIN
                observation = flow.probe_and_observe(domain, duration=0.5)
                outcomes.append("censored" if observation.censored
                                else "clean")
        elif kind == "close":
            flow = flows.pop(int(op[1]), None)
            if flow is not None:
                flow.close()
            outcomes.append("closed")
        elif kind == "idle":
            network = world.network
            network.run(until=network.now + float(op[1]))
            outcomes.append("idled")
        else:
            outcomes.append("nop")
        snapshots.append(_session_counters(world.box))
    for flow in flows.values():
        flow.close()
    return outcomes, snapshots


def run_session_schedule(entry: dict) -> DiffResult:
    """Differential replay: bounded session table vs. the unbounded
    idealization.

    The same op schedule runs against two identical wiretap
    deployments — one with the entry's finite table / overload policy /
    residual window, one with the paper's unbounded defaults.  Every
    per-op outcome disagreement must be explained by a session event
    the bounded box recorded at or before that op; anything else is a
    finding, as is session activity on the unbounded reference or the
    bounded table exceeding its configured capacity.
    """
    result = DiffResult()
    ops = entry.get("ops", [])
    max_flows = int(entry.get("max_flows", 4))
    bounded = _session_world(
        max_flows=max_flows,
        overload=entry.get("overload", "fail-open"),
        eviction=entry.get("eviction", "none"),
        residual=float(entry.get("residual", 0.0)))
    reference = _session_world()
    bounded_out, snapshots = _replay_session(bounded, ops)
    reference_out, _ = _replay_session(reference, ops)

    if bounded.box.flows.high_water > max_flows:
        result.violations.append((
            "session-capacity-breach",
            f"table held {bounded.box.flows.high_water} flows with "
            f"max_flows={max_flows}"))
    if any(_session_counters(reference.box).values()):
        result.violations.append((
            "session-reference-activity",
            "unbounded reference box recorded session-table events"))

    for index, (ours, theirs) in enumerate(zip(bounded_out, reference_out)):
        if ours == theirs:
            continue
        cls = _explain_session_diff(snapshots, index)
        if cls is None:
            result.violations.append((
                "session-diff",
                f"op {index} ({ops[index][0]}): bounded={ours} "
                f"reference={theirs} with no session event to explain it"))
        else:
            result.note(cls)
    return result


def _explain_session_diff(snapshots: List[Dict[str, int]],
                          index: int) -> Optional[str]:
    """The class of the nearest session event at or before op *index*."""
    for position in range(index, -1, -1):
        previous = (snapshots[position - 1] if position
                    else {name: 0 for name, _ in _SESSION_CLASSES})
        for name, cls in _SESSION_CLASSES:
            if snapshots[position][name] > previous[name]:
                return cls
    return None
