"""Live event fan-out: campaign threads in, SSE subscribers out.

The measurement service runs campaigns on worker threads while its
HTTP side lives on an asyncio loop; events produced on one side must
reach many consumers on the other without ever blocking the producer.
:class:`LiveFeed` is that seam:

* ``publish`` is thread-safe, non-blocking, and never raises into the
  producer — a slow or dead subscriber costs *that subscriber* dropped
  events (counted), never a stalled campaign commit loop;
* each subscriber gets its own bounded queue; on overflow the oldest
  event is discarded first (a live view wants *now*, not an unbounded
  backlog of *then*);
* a small replay ring lets a late subscriber (a dashboard attaching
  mid-campaign) see the recent past before the live tail begins;
* events are sequence-stamped at publish time, so a consumer can
  detect its own gaps (``seq`` jumps) after drops.

This module is transport-agnostic on purpose: SSE framing lives in
:mod:`repro.serve.sse`, and nothing here imports asyncio — a plain
thread can subscribe with the same API.
"""

from __future__ import annotations

import collections
import threading
from typing import Callable, Deque, Dict, List, Optional

#: Events a subscriber may fall behind before its oldest are dropped.
DEFAULT_SUBSCRIBER_DEPTH = 256

#: Events kept for replay to late subscribers.
DEFAULT_REPLAY = 64


class Subscription:
    """One consumer's bounded, droppable view of a feed."""

    def __init__(self, feed: "LiveFeed", depth: int) -> None:
        self._feed = feed
        self._queue: Deque[Dict] = collections.deque()
        self._depth = depth
        self._cond = threading.Condition(feed._lock)
        self.dropped = 0
        self.closed = False
        #: Optional wakeup hook called (with no lock held) after an
        #: event lands; the asyncio bridge uses call_soon_threadsafe
        #: here.  Must be cheap and must not raise.
        self.on_ready: Optional[Callable[[], None]] = None

    def _offer(self, event: Dict) -> None:
        """Feed-side enqueue; caller holds the feed lock."""
        if self.closed:
            return
        if len(self._queue) >= self._depth:
            self._queue.popleft()
            self.dropped += 1
        self._queue.append(event)
        self._cond.notify_all()

    def pop(self, timeout: Optional[float] = None) -> Optional[Dict]:
        """Next event, blocking up to *timeout*; ``None`` on timeout
        or once closed and empty."""
        with self._cond:
            if not self._queue and not self.closed:
                self._cond.wait(timeout)
            if self._queue:
                return self._queue.popleft()
            return None

    def drain(self) -> List[Dict]:
        """Every queued event, without blocking."""
        with self._cond:
            events = list(self._queue)
            self._queue.clear()
            return events

    def close(self) -> None:
        self._feed.unsubscribe(self)


class LiveFeed:
    """Thread-safe bounded fan-out with replay for late joiners."""

    def __init__(self, replay: int = DEFAULT_REPLAY) -> None:
        self._lock = threading.Lock()
        self._subs: List[Subscription] = []
        self._ring: Deque[Dict] = collections.deque(maxlen=replay)
        self._seq = 0
        self.published = 0
        self.closed = False

    def publish(self, event: Dict) -> None:
        """Stamp and deliver one event; never blocks, never raises."""
        wakeups: List[Callable[[], None]] = []
        with self._lock:
            if self.closed:
                return
            event = dict(event)
            event["seq"] = self._seq
            self._seq += 1
            self.published += 1
            self._ring.append(event)
            for sub in self._subs:
                sub._offer(event)
                if sub.on_ready is not None:
                    wakeups.append(sub.on_ready)
        for wake in wakeups:
            try:
                wake()
            except Exception:  # pragma: no cover - defensive
                pass

    def subscribe(self, depth: int = DEFAULT_SUBSCRIBER_DEPTH,
                  replay: bool = True) -> Subscription:
        """A new bounded subscription, optionally pre-seeded with the
        replay ring so a late joiner has context."""
        sub = Subscription(self, depth)
        with self._lock:
            if replay:
                for event in self._ring:
                    sub._offer(event)
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            sub.closed = True
            try:
                self._subs.remove(sub)
            except ValueError:
                pass
            sub._cond.notify_all()

    def close(self) -> None:
        """End the feed: wake every subscriber so blocked pops return."""
        with self._lock:
            self.closed = True
            for sub in self._subs:
                sub.closed = True
                sub._cond.notify_all()
            self._subs.clear()

    @property
    def subscribers(self) -> int:
        with self._lock:
            return len(self._subs)
