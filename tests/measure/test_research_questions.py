"""The paper's research questions (§1), answered end to end.

The introduction poses five questions; each test here answers one
using only the measurement layer — the same way the paper's 18-month
campaign did — against the small world.
"""

import pytest

from repro.core.measure import (
    canonical_payload,
    express_http_probe,
    measure_collateral_express,
    measure_coverage_inside,
)


class TestQ1_WhatTriggersCensorship:
    """"What sequence of protocol messages triggers censorship?" —
    a complete handshake followed by a GET whose Host names a blocked
    domain; nothing less."""

    def test_answer(self, small_world):
        from repro.core.measure import find_controlled_target, \
            probe_statefulness
        world = small_world
        server, domain = find_controlled_target(
            world, "idea", sorted(world.blocklists.http["idea"]))
        assert server is not None
        report = probe_statefulness(world, "idea", domain, server.ip)
        assert report.stateful
        assert report.full_handshake


class TestQ2_WhatTechniques:
    """"Exactly what techniques are employed?" — HTTP middleboxes in
    four ISPs, DNS poisoning in two, nothing else."""

    def test_http_isps(self, small_world):
        from repro.core.measure import find_controlled_target, \
            classify_middlebox
        world = small_world
        kinds = {}
        for isp in ("airtel", "idea"):
            server, domain = find_controlled_target(
                world, isp, sorted(world.blocklists.http[isp]))
            if server is None:
                continue
            result = classify_middlebox(world, isp, domain,
                                        server_host=server, attempts=6)
            kinds[isp] = result.kind
        assert kinds.get("airtel") == "wiretap"
        assert kinds.get("idea") == "interceptive"

    def test_dns_isps(self, small_world):
        from repro.core.measure import scan_isp_resolvers
        world = small_world
        scan = scan_isp_resolvers(
            world, "mtnl", prefixes=world.isp("mtnl").scan_prefixes)
        assert scan.censorious

    def test_no_tcpip_filtering(self, small_world):
        from repro.core.measure import detect_tcpip_filtering
        world = small_world
        sample = sorted(world.blocklists.http["idea"])[:4]
        assert not detect_tcpip_filtering(world, "idea",
                                          sample).any_filtering


class TestQ3_FractionOfPathsImpacted:
    """"Approximately what fraction of network paths are impacted?" —
    wildly different per ISP (>90% Idea vs single digits Jio)."""

    def test_answer(self, small_world):
        world = small_world
        idea = measure_coverage_inside(world, "idea").coverage
        jio = measure_coverage_inside(world, "jio").coverage
        assert idea > 0.7
        assert jio < 0.3
        assert idea > 2 * jio


class TestQ4_UniformityAndConsistency:
    """"Is censorship uniform and consistent across ISPs?" — no:
    different ISPs block different (overlapping) sets, and even one
    ISP's boxes disagree with each other."""

    def test_isps_block_different_sets(self, small_world):
        """Measured (not configured) censored sets differ across ISPs."""
        world = small_world
        measured = {}
        for isp in ("airtel", "idea"):
            client = world.client_of(isp)
            censored = set()
            for domain in world.corpus.domains():
                ip = world.hosting.ip_for(domain, "in")
                if ip is None:
                    continue
                verdict = express_http_probe(world.network, client, ip,
                                             canonical_payload(domain))
                if verdict.censored:
                    censored.add(domain)
            measured[isp] = censored
        assert measured["airtel"] != measured["idea"]
        # Some overlap exists (porn blocked broadly)...
        assert measured["airtel"] or measured["idea"]

    def test_boxes_of_one_isp_disagree(self, small_world):
        """Per-path blocked sets within Airtel differ (consistency ≪ 1)."""
        world = small_world
        campaign = measure_coverage_inside(world, "airtel")
        poisoned = [p.blocked for p in campaign.paths if p.poisoned]
        assert len(poisoned) >= 2
        assert any(a != b for a in poisoned for b in poisoned)
        assert campaign.consistency < 0.6

    def test_idea_boxes_mostly_agree(self, small_world):
        world = small_world
        campaign = measure_coverage_inside(world, "idea")
        assert campaign.consistency > 0.55

    def test_collateral_reaches_clean_isps(self, small_world):
        report = measure_collateral_express(small_world, "siti")
        assert report.total_censored > 0
        assert "siti" not in report.by_neighbour


class TestQ5_HowHardToBypass:
    """"How hard or easy is it to bypass?" — easy: a crafted request or
    a local firewall rule suffices; no third-party infrastructure."""

    def test_answer(self, small_world):
        from repro.core.evasion.autofetch import CensorshipAwareFetcher
        world = small_world
        client = world.client_of("idea")
        domain = next(
            (d for d in sorted(world.blocklists.http["idea"])
             if express_http_probe(
                 world.network, client,
                 world.hosting.ip_for(d, "in"),
                 canonical_payload(d)).censored),
            None)
        assert domain is not None
        fetcher = CensorshipAwareFetcher(world, "idea")
        outcome = fetcher.fetch(domain)
        assert outcome.censorship_detected
        assert outcome.success
