"""The documentation stays consistent with the code (tools/check_docs)."""

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_SPEC = importlib.util.spec_from_file_location(
    "check_docs", os.path.join(REPO_ROOT, "tools", "check_docs.py"))
check_docs = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_docs)

#: Every page docs/README.md must index.
DOC_PAGES = ("OBSERVABILITY.md", "CAMPAIGNS.md", "FAULTS.md",
             "FUZZING.md", "PERFORMANCE.md", "PAPER_MAP.md",
             "SERVICE.md", "SESSION_DYNAMICS.md", "POPULATION.md",
             "ARCHITECTURE.md")


def test_all_markdown_clean():
    """Links resolve and every documented subcommand exists."""
    assert check_docs.main() == 0


def test_docs_index_lists_every_page():
    index_path = os.path.join(REPO_ROOT, "docs", "README.md")
    assert os.path.exists(index_path), "docs/README.md index missing"
    index = open(index_path, encoding="utf-8").read()
    for page in DOC_PAGES:
        assert page in index, f"docs/README.md does not index {page}"
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", page)), \
            f"indexed page docs/{page} missing"


def test_top_level_readme_links_docs_index():
    readme = open(os.path.join(REPO_ROOT, "README.md"),
                  encoding="utf-8").read()
    assert "docs/README.md" in readme
    assert "docs/OBSERVABILITY.md" in readme


def test_cli_subcommand_introspection():
    known = check_docs.cli_subcommands()
    assert {"info", "experiment", "campaign", "report", "fuzz",
            "fetch", "evade", "trace", "serve"} <= set(known)
    assert {"--tenant", "--spool", "--cold-worlds"} <= known["serve"]
    assert "--resume" in known["campaign"]


def test_every_package_is_indexed():
    packages = check_docs.repro_packages()
    assert {"netsim", "middlebox", "runner", "obs", "serve",
            "population", "websites"} <= set(packages)
    assert check_docs.check_package_index() == []


def test_package_index_catches_missing_package(monkeypatch):
    monkeypatch.setattr(check_docs, "repro_packages",
                        lambda: ["netsim", "imaginarypkg"])
    errors = check_docs.check_package_index()
    assert len(errors) == 1
    assert "repro.imaginarypkg" in errors[0]


def test_documented_env_vars_exist_in_source():
    known = check_docs.source_env_vars()
    assert {"REPRO_BENCH_FRACTION", "REPRO_POPULATION_SCALE",
            "REPRO_SCHEDULER", "REPRO_PACKET_POOLING"} <= known
    # A doc mentioning a var the source doesn't define is flagged,
    # with its line number.
    errors = check_docs.check_env_vars(
        os.path.join(REPO_ROOT, "docs", "FAKE.md"),
        "line one\nset REPRO_NO_SUCH_KNOB=1\n", known)
    assert errors == ["docs/FAKE.md:2: documented env var "
                      "REPRO_NO_SUCH_KNOB does not appear in src/"]
