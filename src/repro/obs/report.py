"""Campaign run reports: journal + timings + metrics, rendered.

``repro report <run-dir>`` turns a campaign run directory into a
Markdown report (``report.md``) plus a machine-readable twin
(``report.json``).  Both are split the same way the metrics sidecar
is:

* a **deterministic** half — unit outcomes, per-ISP coverage deltas
  against the paper's committed Table 2 expectations, drops by reason,
  the fault-injection summary, trace-event counts — identical between
  a serial and a ``--workers N`` run of the same campaign;
* a **wall** half — slowest units, total wall time, simulated events
  per second — which varies run to run and machine to machine.

Tests compare two runs' reports with the wall half stripped.

Only ``journal.jsonl`` is required.  Every sidecar — ``metrics.json``,
``timings.jsonl``, ``supervision.jsonl``, ``trace.jsonl`` — may be
missing or torn (a crash can land between the journal fsync and the
sidecar write) and the report still renders, flagging the gap with a
"(sidecar unavailable)" note instead of raising.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

#: Units shown in the slowest-units table.
SLOWEST_SHOWN = 5


class ReportError(RuntimeError):
    """The run directory is missing or unreadable."""


def load_run(run_dir: str) -> Dict:
    """Parse everything a run directory holds into plain dicts."""
    journal_path = os.path.join(run_dir, "journal.jsonl")
    if not os.path.exists(journal_path):
        raise ReportError(
            f"{run_dir!r} is not a campaign run directory "
            f"(no journal.jsonl)")
    from ..runner.journal import Journal

    records, discarded = Journal.load(journal_path)
    meta: Dict = {}
    end: Dict = {}
    latest: Dict[Tuple[str, str], Dict] = {}
    for rec in records:
        kind = rec.get("type")
        if kind == "meta":
            meta = rec
        elif kind == "unit":
            latest[(rec["experiment"], rec["unit"])] = rec
        elif kind == "end":
            end = rec
    sidecars: Dict[str, str] = {}
    timings = _read_jsonl(
        os.path.join(run_dir, "timings.jsonl"), sidecars, "timings")
    metrics = _read_json(
        os.path.join(run_dir, "metrics.json"), sidecars, "metrics")
    supervision = _read_jsonl(
        os.path.join(run_dir, "supervision.jsonl"), sidecars,
        "supervision")
    return {
        "run_dir": run_dir,
        "meta": meta,
        "end": end,
        "units": latest,
        "discarded": discarded,
        "timings": timings,
        "metrics": metrics,
        "trace_lines": _read_lines(os.path.join(run_dir, "trace.jsonl")),
        "supervision": supervision,
        "sidecars": sidecars,
    }


def _read_jsonl(path: str, sidecars: Optional[Dict[str, str]] = None,
                name: str = "") -> List[Dict]:
    if not os.path.exists(path):
        if sidecars is not None:
            sidecars[name] = "missing"
        return []
    entries = []
    status = "ok"
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    try:
                        entries.append(json.loads(line))
                    except ValueError:
                        status = "torn"
    except OSError:
        status = "torn"
    if sidecars is not None:
        sidecars[name] = status
    return entries


def _read_json(path: str, sidecars: Optional[Dict[str, str]] = None,
               name: str = "") -> Optional[Dict]:
    if not os.path.exists(path):
        if sidecars is not None:
            sidecars[name] = "missing"
        return None
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        # A torn sidecar (crash mid-write, disk hiccup) degrades the
        # report, it doesn't kill it: the journal is the truth.
        if sidecars is not None:
            sidecars[name] = "torn"
        return None
    if sidecars is not None:
        sidecars[name] = "ok"
    return payload if isinstance(payload, dict) else None


def _read_lines(path: str) -> List[str]:
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as fh:
        return [line.rstrip("\n") for line in fh if line.strip()]


# ---------------------------------------------------------------------------
# Report data (the JSON twin)
# ---------------------------------------------------------------------------

def generate_report(run_dir: str) -> Dict:
    """The full report as a JSON-able dict: deterministic + wall."""
    run = load_run(run_dir)
    return {
        "deterministic": _deterministic_half(run),
        "wall": _wall_half(run),
    }


def _deterministic_half(run: Dict) -> Dict:
    meta = run["meta"]
    counts: Dict[str, int] = {}
    by_experiment: Dict[str, Dict[str, str]] = {}
    quarantined: List[Dict] = []
    for (experiment, unit), rec in sorted(run["units"].items()):
        status = rec.get("status", "unknown")
        counts[status] = counts.get(status, 0) + 1
        by_experiment.setdefault(experiment, {})[unit] = status
        if status == "quarantined":
            quarantined.append({
                "unit": f"{experiment}:{unit}",
                "reason": (rec.get("error") or {}).get("reason"),
            })
    metrics = run["metrics"] or {}
    deterministic_metrics = metrics.get("deterministic") or {}
    return {
        "meta": {key: meta.get(key) for key in
                 ("seed", "scale", "fraction", "experiments", "loss",
                  "fault_seed", "retries", "unit_steps", "version")},
        "end_status": run["end"].get("status"),
        "unit_counts": counts,
        "units": by_experiment,
        "quarantined": quarantined,
        "coverage": _coverage_deltas(run),
        "session": _session_table(run),
        "population": _population_table(run),
        "drops": _drops(deterministic_metrics),
        "faults": _fault_summary(meta, deterministic_metrics),
        "trace": _trace_summary(run["trace_lines"]),
        "metrics": deterministic_metrics,
        "discarded_journal_lines": run["discarded"],
        "sidecar_notes": _sidecar_notes(run, ("metrics",)),
    }


def _sidecar_notes(run: Dict, names: Tuple[str, ...]) -> List[str]:
    """Human-readable gaps for the sidecars that feed a report half.

    ``metrics`` feeds the deterministic half; ``timings`` and
    ``supervision`` only feed the wall half — keeping their notes out
    of the deterministic half preserves serial-vs-parallel report
    identity (supervision sidecars legitimately differ across modes).

    ``supervision.jsonl`` is written lazily, only when supervision
    events actually occur, so *missing* is a clean run, not damage;
    only a torn supervision sidecar gets a note.
    """
    files = {"metrics": "metrics.json", "timings": "timings.jsonl",
             "supervision": "supervision.jsonl"}
    notes = []
    for name in names:
        status = run.get("sidecars", {}).get(name, "ok")
        if name == "supervision" and status == "missing":
            continue
        if status != "ok":
            notes.append(
                f"(sidecar unavailable: {files[name]} {status} — "
                f"derived numbers omitted)")
    return notes


def _wall_half(run: Dict) -> Dict:
    timings = run["timings"]
    slowest = sorted(timings, key=lambda t: t.get("wall", 0.0),
                     reverse=True)[:SLOWEST_SHOWN]
    total_wall = round(sum(t.get("wall", 0.0) for t in timings), 3)
    metrics = run["metrics"] or {}
    supervision: Dict[str, int] = {}
    for event in run["supervision"]:
        kind = event.get("kind", "unknown")
        supervision[kind] = supervision.get(kind, 0) + 1
    return {
        "total_wall_seconds": total_wall,
        "slowest_units": slowest,
        "metrics": metrics.get("wall") or {},
        "session_counters": _session_counter_totals(run),
        "supervision": dict(sorted(supervision.items())),
        "sidecar_notes": _sidecar_notes(
            run, ("timings", "supervision")),
    }


def _coverage_deltas(run: Dict) -> List[Dict]:
    """Measured Table 2 coverage vs the paper's committed expectations.

    Table 2 unit payload rows are
    ``[isp, inside%, outside%, type, blocked, paper-cell]``; the
    expectations are the committed ``PAPER_TABLE2`` constants.
    """
    from ..experiments.table2_http import PAPER_TABLE2

    deltas = []
    for (experiment, unit), rec in sorted(run["units"].items()):
        if experiment != "table2" or rec.get("status") not in (
                "ok", "degraded"):
            continue
        payload = rec.get("payload") or {}
        for row in payload.get("rows", ()):
            if not row or row[0] not in PAPER_TABLE2:
                continue
            isp = row[0]
            expected_in, expected_out, expected_kind, _ = PAPER_TABLE2[isp]
            measured_in = _as_float(row[1])
            measured_out = _as_float(row[2])
            entry = {
                "isp": isp,
                "inside": measured_in,
                "outside": measured_out,
                "type": row[3] if len(row) > 3 else None,
                "paper_inside": expected_in,
                "paper_outside": expected_out,
                "paper_type": expected_kind,
            }
            if measured_in is not None:
                entry["inside_delta"] = round(measured_in - expected_in, 1)
            if measured_out is not None:
                entry["outside_delta"] = round(
                    measured_out - expected_out, 1)
            deltas.append(entry)
    return deltas


def _session_table(run: Dict) -> List[Dict]:
    """Per-ISP session-table parameters the probers recovered.

    Session-dynamics unit payload rows are ``[isp, mechanism,
    idle timeout, capacity, overload, residual]`` with ``-`` for
    anything a prober could not observe.  Pre-session run directories
    simply have no such units, so this renders empty for them.
    """
    table = []
    for (experiment, unit), rec in sorted(run["units"].items()):
        if experiment != "session-dynamics" or rec.get("status") not in (
                "ok", "degraded"):
            continue
        payload = rec.get("payload") or {}
        for row in payload.get("rows", ()):
            if len(row) < 6:
                continue
            table.append({
                "isp": row[0],
                "mechanism": row[1],
                "recovered_timeout": _as_float(row[2]),
                "capacity": _as_float(row[3]),
                "overload": row[4] if row[4] != "-" else None,
                "residual_window": _as_float(row[5]),
            })
    return table


def _population_table(run: Dict) -> List[Dict]:
    """Per-ISP population-scale summaries (Table 2-style block rates).

    Population-scale units carry a ``population`` payload key with the
    aggregated day: sessions, blocked/leaked totals, per-category
    counts and the sketch-sampled top blocked domains.  Entirely
    deterministic (the engine is seeded and sketch merges are
    canonical), so it lives in the deterministic half.  Pre-population
    run directories simply have no such units.
    """
    table = []
    for (experiment, unit), rec in sorted(run["units"].items()):
        if experiment != "population-scale" or rec.get("status") not in (
                "ok", "degraded"):
            continue
        payload = rec.get("payload") or {}
        summary = payload.get("population")
        if isinstance(summary, dict):
            table.append(summary)
    return table


#: Session-table metric prefixes folded into the wall counters, and
#: the short name each reports under.
_SESSION_METRIC_PREFIXES = (
    ("middlebox_flow_evictions_total{", "evicted"),
    ("middlebox_overload_total{", "overload"),
    ("middlebox_residual_hits_total{", "residual_hits"),
    ("middlebox_truncated_flows_total{", "truncated_flows"),
)


def _session_counter_totals(run: Dict) -> Dict[str, int]:
    """Session-table activity: unit payload counters + world metrics.

    Scenario-box activity travels in the session-dynamics units'
    ``session_counters`` payload key; main-world activity (a profile
    configured with a bounded table) lands in the metrics sidecar's
    counters.  Empty for pre-session run directories — the key renders
    only when something actually happened.
    """
    totals: Dict[str, int] = {}
    for (experiment, _unit), rec in sorted(run["units"].items()):
        if experiment != "session-dynamics" or rec.get("status") not in (
                "ok", "degraded"):
            continue
        payload = rec.get("payload") or {}
        for name, value in (payload.get("session_counters") or {}).items():
            totals[name] = totals.get(name, 0) + int(value)
    metrics = run["metrics"] or {}
    for half in ("deterministic", "wall"):
        counters = (metrics.get(half) or {}).get("counters") or {}
        for key, value in counters.items():
            for prefix, name in _SESSION_METRIC_PREFIXES:
                if key.startswith(prefix):
                    totals[name] = totals.get(name, 0) + value
    return dict(sorted(totals.items()))


def _as_float(cell) -> Optional[float]:
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def _drops(metrics: Dict) -> Dict[str, int]:
    """``reason -> count`` folded from ``netsim_drops_total`` metrics."""
    drops: Dict[str, int] = {}
    for key, value in (metrics.get("counters") or {}).items():
        if key.startswith("netsim_drops_total{"):
            labels = _labels(key)
            reason = labels.get("reason", "unknown")
            drops[reason] = drops.get(reason, 0) + value
    return dict(sorted(drops.items()))


def _fault_summary(meta: Dict, metrics: Dict) -> Dict:
    counters = metrics.get("counters") or {}
    blind = sum(value for key, value in counters.items()
                if key.startswith("middlebox_fault_blind_total{"))
    retries = sum(value for key, value in counters.items()
                  if key.startswith("client_retries_total{"))
    return {
        "loss": meta.get("loss"),
        "fault_seed": meta.get("fault_seed"),
        "retries_configured": meta.get("retries"),
        "middlebox_blind_windows": blind,
        "client_retries": retries,
    }


def _trace_summary(lines: List[str]) -> Optional[Dict]:
    if not lines:
        return None
    by_kind: Dict[str, int] = {}
    for line in lines:
        try:
            kind = json.loads(line).get("kind", "unknown")
        except ValueError:
            kind = "unparseable"
        by_kind[kind] = by_kind.get(kind, 0) + 1
    return {"events": len(lines), "by_kind": dict(sorted(by_kind.items()))}


def _labels(key: str) -> Dict[str, str]:
    """Parse a ``name{k=v,...}`` metric key's labels."""
    if "{" not in key:
        return {}
    inner = key[key.index("{") + 1:key.rindex("}")]
    labels = {}
    for pair in inner.split(","):
        if "=" in pair:
            name, value = pair.split("=", 1)
            labels[name] = value
    return labels


# ---------------------------------------------------------------------------
# Markdown rendering
# ---------------------------------------------------------------------------

def render_markdown(data: Dict, run_dir: str = "") -> str:
    det = data["deterministic"]
    wall = data["wall"]
    lines: List[str] = [f"# Campaign report: {run_dir or 'run'}", ""]

    meta = det["meta"]
    lines += [
        "## Run",
        "",
        f"- seed: {meta.get('seed')}  ·  scale: {meta.get('scale')}  ·  "
        f"fraction: {meta.get('fraction')}",
        f"- experiments: {', '.join(meta.get('experiments') or [])}",
        f"- end status: {det.get('end_status') or '(no end record)'}",
        "",
    ]

    for note in det.get("sidecar_notes") or ():
        lines += [f"- {note}"]
    if det.get("sidecar_notes"):
        lines.append("")

    counts = det["unit_counts"]
    lines += ["## Units", ""]
    lines += [f"- {status}: {count}"
              for status, count in sorted(counts.items())]
    if det.get("discarded_journal_lines"):
        lines.append(f"- journal lines discarded on resume: "
                     f"{det['discarded_journal_lines']}")
    for entry in det.get("quarantined") or ():
        lines.append(f"- quarantined: {entry['unit']} — "
                     f"{entry['reason']}")
    lines.append("")

    coverage = det["coverage"]
    if coverage:
        lines += [
            "## Coverage vs paper (Table 2)",
            "",
            "| ISP | inside % | Δ | outside % | Δ | type (paper) |",
            "|---|---|---|---|---|---|",
        ]
        for row in coverage:
            delta_in = row.get("inside_delta")
            delta_out = row.get("outside_delta")
            lines.append(
                f"| {row['isp']} | {row['inside']} | "
                f"{_fmt_delta(delta_in)} | {row['outside']} | "
                f"{_fmt_delta(delta_out)} | "
                f"{row['type']} ({row['paper_type']}) |")
        lines.append("")

    session = det.get("session") or ()
    if session:
        lines += [
            "## Session dynamics (recovered, not read from config)",
            "",
            "| ISP | mechanism | idle timeout (s) | capacity | overload "
            "| residual (s) |",
            "|---|---|---|---|---|---|",
        ]
        for row in session:
            lines.append(
                f"| {row['isp']} | {row['mechanism']} | "
                f"{_fmt_opt(row['recovered_timeout'])} | "
                f"{_fmt_opt(row['capacity'])} | "
                f"{row['overload'] or '-'} | "
                f"{_fmt_opt(row['residual_window'])} |")
        lines.append("")

    population = det.get("population") or ()
    if population:
        lines += [
            "## Population scale (per-category block rates)",
            "",
            "| ISP | mechanism | sessions | blocked | leaked | "
            "block % | peak hour |",
            "|---|---|---|---|---|---|---|",
        ]
        for row in population:
            sessions = row.get("sessions") or 0
            blocked = row.get("blocked") or 0
            rate = round(100.0 * blocked / sessions, 2) if sessions else 0.0
            lines.append(
                f"| {row.get('isp')} | {row.get('mechanism')} | "
                f"{sessions} | {blocked} | {row.get('leaked')} | "
                f"{rate} | {row.get('peak_hour')}:00 |")
        lines.append("")
        by_category: Dict[str, List[int]] = {}
        for row in population:
            for entry in row.get("per_category") or ():
                slot = by_category.setdefault(
                    entry["category"], [0, 0])
                slot[0] += entry.get("sessions", 0)
                slot[1] += entry.get("blocked", 0)
        if by_category:
            lines += [
                "### By category (all ISPs)",
                "",
                "| category | sessions | blocked | block % |",
                "|---|---|---|---|",
            ]
            for category in sorted(by_category):
                sessions, blocked = by_category[category]
                rate = round(100.0 * blocked / sessions, 2) \
                    if sessions else 0.0
                lines.append(f"| {category} | {sessions} | {blocked} | "
                             f"{rate} |")
            lines.append("")
        top: List[Tuple[str, int, str]] = []
        for row in population:
            for domain, count in row.get("top_blocked") or ():
                top.append((domain, count, row.get("isp") or "?"))
        top.sort(key=lambda item: (-item[1], item[0]))
        if top:
            lines += ["### Most-blocked sampled domains", ""]
            lines += [f"- {domain} ({isp}): ~{count} sessions"
                      for domain, count, isp in top[:5]]
            lines.append("")

    drops = det["drops"]
    if drops:
        lines += ["## Drops by reason", ""]
        lines += [f"- {reason}: {count}"
                  for reason, count in drops.items()]
        lines.append("")

    faults = det["faults"]
    lines += [
        "## Fault injection",
        "",
        f"- loss: {faults['loss']}  ·  fault seed: "
        f"{faults['fault_seed']}  ·  retries: "
        f"{faults['retries_configured']}",
        f"- middlebox blind windows: {faults['middlebox_blind_windows']}"
        f"  ·  client retries: {faults['client_retries']}",
        "",
    ]

    trace = det["trace"]
    if trace:
        lines += ["## Trace", "",
                  f"- events recorded: {trace['events']}"]
        lines += [f"- {kind}: {count}"
                  for kind, count in trace["by_kind"].items()]
        lines.append("")

    lines += ["## Wall (nondeterministic)", ""]
    lines += [f"- {note}" for note in wall.get("sidecar_notes") or ()]
    lines.append(f"- total unit wall: {wall['total_wall_seconds']} s")
    gauges = (wall.get("metrics") or {}).get("gauges") or {}
    eps = gauges.get("campaign_events_per_second")
    if eps is not None:
        lines.append(f"- simulated events/second: {eps}")
    session_counters = wall.get("session_counters") or {}
    if session_counters:
        lines.append("- session-table events: " + ", ".join(
            f"{name}: {count}"
            for name, count in session_counters.items()))
    supervision = wall.get("supervision") or {}
    if supervision:
        lines.append("- supervision events: " + ", ".join(
            f"{kind}: {count}"
            for kind, count in supervision.items()))
    if wall["slowest_units"]:
        lines += ["", "| unit | status | wall (s) |", "|---|---|---|"]
        lines += [
            f"| {t.get('experiment')}:{t.get('unit')} | "
            f"{t.get('status')} | {t.get('wall')} |"
            for t in wall["slowest_units"]
        ]
    lines.append("")
    return "\n".join(lines)


def _fmt_delta(delta: Optional[float]) -> str:
    return f"{delta:+}" if delta is not None else "-"


def _fmt_opt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return str(int(value)) if value == int(value) else str(value)


def write_report(run_dir: str) -> Tuple[str, str]:
    """Render and write ``report.md`` + ``report.json``; return paths.

    Both files land atomically (tmp + fsync + rename) so a reader —
    the service's status endpoint, a crash-recovery scan — never sees
    a torn report.
    """
    from ..runner.atomicio import replace_text

    data = generate_report(run_dir)
    md_path = os.path.join(run_dir, "report.md")
    json_path = os.path.join(run_dir, "report.json")
    replace_text(md_path, render_markdown(data, run_dir=os.path.basename(
        os.path.normpath(run_dir))))
    replace_text(json_path,
                 json.dumps(data, indent=2, sort_keys=True) + "\n")
    return md_path, json_path
