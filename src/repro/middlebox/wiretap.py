"""Wiretap middleboxes (WM) — Airtel and Reliance Jio.

A WM is a host hanging off a tap: it receives a *copy* of every packet
crossing its router and can only react by injecting new, forged packets
(Figure 4).  On seeing a censored GET inside an established flow it
injects, toward the client:

1. an ``HTTP 200 OK`` censorship notification with the server's forged
   source address, correct sequence/acknowledgement numbers and
   ``FIN|PSH|ACK`` set — forcing the client's browser into connection
   teardown; then
2. a bare ``RST`` finishing the job.

Because the WM works on a copy it cannot outpace the genuine traffic
reliably: the paper observed the real page rendering in roughly 3 of 10
attempts.  That race is modelled with a ``miss_rate``: on a miss the
box reacts too slowly (its injection is delayed past any plausible
response time) and the genuine response wins.

Airtel's boxes have a famous tell: every injected packet carries the
fixed IP-ID 242 (section 6.3) — which the client-side firewall evasion
keys on (section 5-I).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional, Sequence

from ..netsim.addressing import Prefix
from ..netsim.packets import Packet, TCPFlags, make_tcp_packet
from .base import Middlebox
from .notification import NotificationProfile
from .triggers import TriggerSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.devices import Router

#: How quickly a (winning) WM reacts after seeing the request copy.
FAST_REACTION = 0.0004
#: Reaction time on a lost race: far beyond any response RTT.
SLOW_REACTION = 2.0
#: Gap between the forged FIN notification and the follow-up RST.
RST_FOLLOWUP_GAP = 0.0006


class WiretapMiddlebox(Middlebox):
    """Out-of-band injector fed by a router tap."""

    kind = "wiretap"

    def __init__(
        self,
        name: str,
        isp: str,
        spec: TriggerSpec,
        notification: NotificationProfile,
        *,
        miss_rate: float = 0.0,
        fixed_ip_id: Optional[int] = None,
        seed: int = 0,
        flow_timeout: float = 150.0,
        source_prefixes: Optional[Sequence[Prefix]] = None,
        require_handshake: bool = True,
        **session_kwargs,
    ) -> None:
        super().__init__(name, isp, spec, flow_timeout=flow_timeout,
                         source_prefixes=source_prefixes,
                         require_handshake=require_handshake,
                         **session_kwargs)
        self.notification = notification
        self.miss_rate = miss_rate
        self.fixed_ip_id = fixed_ip_id
        self._rng = random.Random(seed)

    # -- tap interface -----------------------------------------------------

    def on_copy(self, packet: Packet, now: float, router: "Router") -> None:
        """Inspect one copied packet; maybe inject forged responses."""
        if not packet.is_tcp:
            return
        if self.fault_blind(router.network):
            return
        record = self.flows.observe(packet, now)
        if self.flows.events:
            for kind, _detail in self.session_events(packet, now, router):
                if kind in ("overload-fail-closed", "residual-block"):
                    # The box cannot drop (it has a copy): it kills the
                    # refused/residually-blocked flow with a forged RST.
                    self._refuse_flow(packet, router)
        if not self.is_client_to_server_http(packet):
            return
        self.stats.inspected += 1
        if not self.flow_gate_open(record):
            self.stats.not_established += 1
            return
        client_ip = record.client_ip if record is not None else packet.src
        if not self.in_scope(client_ip):
            self.stats.out_of_scope += 1
            return
        domain = self.spec.matched_domain(packet.tcp.payload)
        if domain is None:
            return

        self.stats.record_trigger(domain)
        self.trigger_log.append((now, domain, packet.src, packet.dst))
        if record is not None:
            self.flows.mark_censored(record, domain, now)

        lost_race = self._rng.random() < self.miss_rate
        network = router.network
        trace = network.trace if network is not None else None
        if trace is not None and trace.active:
            from ..obs.trace import flow_id

            trace.emit("wm-trigger", now, box=self.name, isp=self.isp,
                       node=router.name, domain=domain,
                       flow=flow_id(packet), lost_race=lost_race)
        if lost_race:
            self.stats.missed_race += 1
            reaction = SLOW_REACTION
        else:
            reaction = FAST_REACTION
        self._inject_censorship(packet, domain, router, reaction)

    # -- forged packet construction -----------------------------------------

    def _refuse_flow(self, request: Packet, router: "Router") -> None:
        """Forged connection-refused RST toward the client.

        Used when the session table refuses a new flow (fail-closed
        overload) or a residual-censorship entry blocks it at the SYN.
        The ack field mirrors what a refusing server would send
        (``seq + payload``, plus one for the SYN), which is what the
        client stack requires to accept a reset in SYN_SENT.
        """
        segment = request.tcp
        network = router.network
        assert network is not None
        advance = len(segment.payload)
        if segment.has(TCPFlags.SYN) or segment.has(TCPFlags.FIN):
            advance += 1
        reset = make_tcp_packet(
            request.dst, request.src,            # forged: from the server
            segment.dst_port, segment.src_port,
            seq=segment.ack, ack=segment.seq + advance,
            flags=TCPFlags.RST | TCPFlags.ACK,
            ip_id=self.fixed_ip_id,
        )
        network.call_later(FAST_REACTION, network.inject_at, router, reset)

    def _inject_censorship(self, request: Packet, domain: str,
                           router: "Router", reaction: float) -> None:
        segment = request.tcp
        network = router.network
        assert network is not None

        # The client's own request tells the injector everything it
        # needs: its ack field is the next server sequence number, its
        # seq+len is what the server will acknowledge.
        server_seq = segment.ack
        client_ack = segment.seq + len(segment.payload)

        body = self.notification.response_bytes(domain)
        notification = make_tcp_packet(
            request.dst, request.src,            # forged: from the server
            segment.dst_port, segment.src_port,
            seq=server_seq, ack=client_ack,
            flags=TCPFlags.FIN | TCPFlags.PSH | TCPFlags.ACK,
            payload=body,
            ip_id=self.fixed_ip_id,
        )
        # FIN consumes one sequence number after the payload.
        reset = make_tcp_packet(
            request.dst, request.src,
            segment.dst_port, segment.src_port,
            seq=server_seq + len(body) + 1, ack=client_ack,
            flags=TCPFlags.RST,
            ip_id=self.fixed_ip_id,
        )
        network.call_later(reaction, network.inject_at, router, notification)
        network.call_later(reaction + RST_FOLLOWUP_GAP,
                           network.inject_at, router, reset)
