"""Acceptance: a censored probe's life is reconstructable from traces.

The paper's iterative tracing reconstructs where a probe died and who
answered; these tests assert the trace sidecar carries enough to do
the same offline — a single censored HTTP fetch yields a connected
send → hop... → (intercept/trigger) → inject → deliver chain sharing
one flow id, in virtual-time order.
"""

import pytest

from repro.httpsim import fetch_url
from repro.isps import build_world
from repro.obs.trace import BufferSink, TraceBus


@pytest.fixture()
def traced_world():
    world = build_world(seed=1808, scale=0.05)
    bus = TraceBus()
    sink = BufferSink()
    bus.subscribe(sink)
    world.network.trace = bus
    return world, sink


def _censored_fetch(world, isp):
    """Fetch the first blocked domain whose path crosses a middlebox.

    Coverage is deliberately partial (Table 2): not every blocked
    domain's ECMP path crosses the ISP's boxes, so probe first — the
    probe events don't collide with the packet-level flow events the
    tests inspect (express probes never move packets).
    """
    from repro.core.measure import canonical_payload, express_http_probe

    client = world.client_of(isp)
    for domain in sorted(world.blocklists.http[isp]):
        dst_ip = world.hosting.ip_for(domain, "in")
        if dst_ip is None:
            continue
        verdict = express_http_probe(world.network, client, dst_ip,
                                     canonical_payload(domain))
        if verdict.censored:
            break
    else:
        pytest.fail(f"no censored path found for {isp}")
    result = fetch_url(world.network, client, dst_ip, domain)
    return client, domain, dst_ip, result


def _http_flow_events(sink, dst_ip):
    """Events of the fetch's port-80 flow toward *dst_ip*, in order."""
    flows = {
        event["flow"] for event in sink.events
        if ":80" in event.get("flow", "") and dst_ip in event["flow"]
    }
    assert len(flows) >= 1
    flow = sorted(flows)[-1]  # the (only) HTTP flow of this fetch
    return [event for event in sink.events if event.get("flow") == flow]


class TestInterceptiveChain:
    """Idea runs an inline IM: fully deterministic chain."""

    def test_full_chain_reconstructable(self, traced_world):
        world, sink = traced_world
        client, domain, dst_ip, result = _censored_fetch(world, "idea")
        events = _http_flow_events(sink, dst_ip)
        kinds = [event["kind"] for event in events]

        # Chain shape: the client sent, routers forwarded, the IM
        # consumed the request, forged packets entered mid-path, and
        # the forged response reached the client.
        assert "send" in kinds
        assert "hop" in kinds
        assert "im-intercept" in kinds
        assert "inject" in kinds
        assert "deliver" in kinds

        intercept = next(e for e in events if e["kind"] == "im-intercept")
        assert intercept["domain"] == domain
        assert intercept["isp"] == "idea"

        # Hops before the interception walk toward it; the injection
        # happens at (or after) the intercepting router.
        first_send = kinds.index("send")
        assert first_send < kinds.index("hop") < \
            kinds.index("im-intercept") < kinds.index("inject")

        # Virtual-time order is non-decreasing along the chain.
        times = [event["t"] for event in events]
        assert times == sorted(times)

        # The injected forged response was delivered to the client.
        inject = next(e for e in events if e["kind"] == "inject")
        deliveries = [e for e in events if e["kind"] == "deliver"
                      and e["t"] >= inject["t"]
                      and e["node"] == client.name]
        assert deliveries, "forged response never reached the client"

    def test_ttl_dropping_hop_count_matches_injection_node(
            self, traced_world):
        world, sink = traced_world
        client, domain, dst_ip, _ = _censored_fetch(world, "idea")
        events = _http_flow_events(sink, dst_ip)
        intercept = next(e for e in events if e["kind"] == "im-intercept")
        inject = next(e for e in events if e["kind"] == "inject")
        # Forged packets enter the path at the intercepting router.
        assert inject["node"] == intercept["node"]


class TestWiretapChain:
    """Airtel runs a tapped WM: the trigger is observed off-path."""

    def test_trigger_and_injection_recorded(self, traced_world):
        world, sink = traced_world
        client, domain, dst_ip, _ = _censored_fetch(world, "airtel")
        events = _http_flow_events(sink, dst_ip)
        kinds = [event["kind"] for event in events]

        assert "wm-trigger" in kinds
        trigger = next(e for e in events if e["kind"] == "wm-trigger")
        assert trigger["domain"] == domain
        assert trigger["isp"] == "airtel"
        assert isinstance(trigger["lost_race"], bool)
        # The WM injects from the tapped router, win or lose the race
        # (a lost race only delays the forged packets).
        injects = [e for e in events if e["kind"] == "inject"
                   and e["node"] == trigger["node"]]
        assert injects


class TestDisabledTracing:
    def test_no_bus_records_nothing(self):
        world = build_world(seed=1808, scale=0.05)
        assert world.network.trace is None
        _censored_fetch(world, "idea")  # must not raise

    def test_unsubscribed_bus_records_nothing(self):
        world = build_world(seed=1808, scale=0.05)
        bus = TraceBus()
        world.network.trace = bus
        _censored_fetch(world, "idea")
        assert bus.emitted == 0
