"""TCP/IP (network/transport header) filtering detection — section 3.3.

The paper's deliberately crude but validated approach: for every PBW
that accepts a TCP handshake through Tor (so the site itself is up),
attempt five direct handshakes spaced two seconds apart; only a site
failing *all five* counts as TCP/IP-filtered.  In every Indian ISP the
answer was: none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ...netsim.tcp import TCPApp
from ..groundtruth.tor import TorCircuit
from ..vantage import VantagePoint

HANDSHAKE_ATTEMPTS = 5
ATTEMPT_SPACING = 2.0


@dataclass
class TCPIPFilterReport:
    """Per-site handshake outcomes for one ISP."""

    isp: str
    #: domain -> number of successful handshakes (of the five).
    successes: Dict[str, int] = field(default_factory=dict)
    skipped_unreachable: int = 0

    def filtered_domains(self) -> set:
        """Sites failing all five attempts — the TCP/IP-filtered set."""
        return {domain for domain, wins in self.successes.items()
                if wins == 0}

    @property
    def any_filtering(self) -> bool:
        return bool(self.filtered_domains())


def _attempt_handshake(world, client, ip: str, port: int = 80,
                       timeout: float = 4.0) -> bool:
    outcome = {"connected": False, "done": False}

    class Probe(TCPApp):
        def on_connected(self, conn):
            outcome["connected"] = True
            outcome["done"] = True
            conn.abort()

        def on_closed(self, conn, reason):
            outcome["done"] = True

    network = world.network
    client.stack.connect(ip, port, Probe())
    deadline = network.now + timeout
    while not outcome["done"] and network.now < deadline:
        if network.pending_events == 0:
            break
        network.run(until=min(deadline, network.now + 0.25))
    network.run(until=min(deadline, network.now + 0.05))
    return outcome["connected"]


def detect_tcpip_filtering(
    world,
    isp_name: str,
    domains: Optional[Iterable[str]] = None,
    *,
    attempts: int = HANDSHAKE_ATTEMPTS,
    spacing: float = ATTEMPT_SPACING,
) -> TCPIPFilterReport:
    """Run the five-handshake test over the PBW list."""
    vantage = VantagePoint.inside(world, isp_name)
    tor = TorCircuit(world)
    if domains is None:
        domains = world.corpus.domains()
    report = TCPIPFilterReport(isp=isp_name)
    network = world.network

    for domain in domains:
        lookup = tor.resolve(domain)
        if not lookup.ok or not tor.tcp_connect(lookup.ips[0]):
            report.skipped_unreachable += 1
            continue
        ip = lookup.ips[0]
        wins = 0
        for _ in range(attempts):
            if _attempt_handshake(world, vantage.host, ip):
                wins += 1
            network.run(until=network.now + spacing)
        report.successes[domain] = wins
    return report
