"""Record and gate the simulator's performance trajectory.

``BENCH_simulator.json`` (committed at the repository root) holds the
median ns/op of every case in ``bench_simulator_performance.py``.  CI
re-measures on every push and fails only on a **>2x regression** —
shared-runner jitter makes tighter gates flaky, but an order-of-2 slide
in the forwarding plane is a real bug, not noise.

Usage::

    # produce the pytest-benchmark JSON at small scale
    pytest benchmarks/bench_simulator_performance.py \
        --benchmark-json=bench-raw.json

    # convert it into (or refresh) the committed baseline
    python benchmarks/perf_trajectory.py record bench-raw.json \
        BENCH_simulator.json

    # compare a fresh measurement against the committed baseline
    python benchmarks/perf_trajectory.py check bench-raw.json \
        BENCH_simulator.json

    # additionally require a case to have kept a speedup over the
    # *previous* baseline (stored by record as "previous_cases")
    python benchmarks/perf_trajectory.py check bench-raw.json \
        BENCH_simulator.json \
        --min-speedup test_packet_level_fetch_throughput:2.0

Refreshing a baseline with ``record`` keeps the cases it replaced
under ``previous_cases``, so a perf-optimisation PR can both move the
baseline forward *and* gate CI on the speedup it claimed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Fail ``check`` only when current/baseline exceeds this factor.
DEFAULT_MAX_REGRESSION = 2.0

#: Where ``record``/``check`` look when no baseline path is given.
DEFAULT_BASELINE = "BENCH_simulator.json"


def load_cases(pytest_benchmark_json: str) -> dict:
    """{case name: median ns/op} from pytest-benchmark's output."""
    with open(pytest_benchmark_json, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    cases = {}
    for bench in raw.get("benchmarks", []):
        median_s = bench["stats"]["median"]
        cases[bench["name"]] = round(median_s * 1e9, 1)
    if not cases:
        raise SystemExit(f"{pytest_benchmark_json}: no benchmarks found")
    return cases


def record(args: argparse.Namespace) -> int:
    cases = load_cases(args.raw)
    payload = {
        "note": ("median ns/op per benchmark case; refresh with "
                 "benchmarks/perf_trajectory.py record"),
        "bench_file": "benchmarks/bench_simulator_performance.py",
        "cases": {name: cases[name] for name in sorted(cases)},
    }
    if os.path.exists(args.baseline):
        # Keep the numbers being replaced: `check --min-speedup` gates
        # against them, so a refreshed baseline still proves the
        # improvement that justified refreshing it.
        with open(args.baseline, "r", encoding="utf-8") as fh:
            payload["previous_cases"] = json.load(fh)["cases"]
    # A machine with no baseline yet may also lack the directory the
    # baseline should live in (fresh checkout, scratch dir): create it
    # rather than failing — `record` exists precisely to bootstrap.
    parent = os.path.dirname(os.path.abspath(args.baseline))
    os.makedirs(parent, exist_ok=True)
    fresh = not os.path.exists(args.baseline)
    with open(args.baseline, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name in sorted(cases):
        print(f"  {name}: {cases[name] / 1e6:.2f} ms/op")
    verb = "created" if fresh else "refreshed"
    print(f"{verb} {args.baseline} with {len(cases)} case(s)")
    return 0


def parse_min_speedup(specs) -> dict:
    """{case: factor} from repeated ``CASE:FACTOR`` arguments."""
    gates = {}
    for spec in specs or ():
        case, sep, factor = spec.rpartition(":")
        if not sep or not case:
            raise SystemExit(
                f"--min-speedup {spec!r}: expected CASE:FACTOR")
        try:
            gates[case] = float(factor)
        except ValueError:
            raise SystemExit(
                f"--min-speedup {spec!r}: {factor!r} is not a number")
    return gates


def check(args: argparse.Namespace) -> int:
    current = load_cases(args.raw)
    if not os.path.exists(args.baseline):
        raise SystemExit(
            f"{args.baseline}: no baseline on this machine — create one "
            f"first with:\n  python benchmarks/perf_trajectory.py record "
            f"{args.raw} {args.baseline}")
    with open(args.baseline, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    baseline = payload["cases"]
    previous = payload.get("previous_cases", {})
    gates = parse_min_speedup(getattr(args, "min_speedup", None))
    failures = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"  NEW      {name} (no baseline — run `record`)")
            continue
        if name not in current:
            print(f"  MISSING  {name} (in baseline, not measured)")
            continue
        ratio = current[name] / baseline[name]
        delta = (ratio - 1.0) * 100.0
        verdict = "ok"
        if ratio > args.max_regression:
            verdict = "REGRESSED"
            failures.append((name, ratio))
        print(f"  {verdict:9s}{name}: {current[name] / 1e6:.2f} ms/op "
              f"({ratio:.2f}x baseline, {delta:+.1f}%)")
    for name in sorted(gates):
        factor = gates[name]
        if name not in previous:
            raise SystemExit(
                f"--min-speedup {name}: baseline has no previous_cases "
                f"entry for it (refresh with `record` over an existing "
                f"baseline first)")
        if name not in current:
            raise SystemExit(
                f"--min-speedup {name}: case was not measured")
        speedup = previous[name] / current[name]
        if speedup < factor:
            failures.append((name, speedup))
            print(f"  TOO-SLOW {name}: {speedup:.2f}x over the previous "
                  f"baseline (gate {factor:.2f}x)")
        else:
            print(f"  speedup  {name}: {speedup:.2f}x over the previous "
                  f"baseline (gate {factor:.2f}x)")
    if failures:
        worst = max(failures, key=lambda item: item[1])
        print(f"FAIL: {len(failures)} case(s) outside the gates "
              f"(max regression {args.max_regression:.1f}x"
              + (f", min speedups {sorted(gates.items())}" if gates else "")
              + f"; worst: {worst[0]} at {worst[1]:.2f}x)")
        return 1
    print(f"all {len(current)} case(s) within "
          f"{args.max_regression:.1f}x of baseline"
          + (f" and past {len(gates)} speedup gate(s)" if gates else ""))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="write/refresh the baseline")
    p_record.add_argument("raw", help="pytest-benchmark JSON output")
    p_record.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE,
                          help="baseline file to write "
                               "(default %(default)s)")
    p_record.set_defaults(fn=record)

    p_check = sub.add_parser("check", help="compare against the baseline")
    p_check.add_argument("raw", help="pytest-benchmark JSON output")
    p_check.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE,
                         help="committed baseline file "
                              "(default %(default)s)")
    p_check.add_argument("--max-regression", type=float,
                         default=DEFAULT_MAX_REGRESSION,
                         help="failure threshold as current/baseline "
                              "ratio (default %(default)s)")
    p_check.add_argument("--min-speedup", action="append",
                         metavar="CASE:FACTOR",
                         help="require CASE to run FACTORx faster than "
                              "the baseline's previous_cases entry; "
                              "repeatable")
    p_check.set_defaults(fn=check)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
