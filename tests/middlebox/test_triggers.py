"""Trigger-spec matching discipline (sections 3.4-IV and 5)."""

import pytest

from repro.httpsim import GetRequestSpec
from repro.middlebox import TriggerSpec

BLOCKED = "blocked.com"


def spec(**kwargs):
    return TriggerSpec(blocklist=frozenset({BLOCKED}), **kwargs)


def raw(domain=BLOCKED, **kwargs):
    return GetRequestSpec(domain=domain, **kwargs).to_bytes()


class TestCanonicalMatching:
    def test_stock_browser_request_triggers(self):
        assert spec().matched_domain(raw()) == BLOCKED

    def test_unblocked_domain_does_not_trigger(self):
        assert spec().matched_domain(raw("other.com")) is None

    def test_domain_case_is_insensitive(self):
        payload = raw().replace(b"blocked.com", b"BLOCKED.com")
        assert spec().matched_domain(payload) == BLOCKED

    def test_empty_payload(self):
        assert spec().matched_domain(b"") is None

    def test_port_scoping(self):
        s = spec()
        assert s.inspects_port(80)
        assert not s.inspects_port(443)
        assert not s.inspects_port(8080)


class TestOffsetFudging:
    """Section 3.4-IV: only the Host field triggers, never the domain at
    other offsets in the request."""

    def test_domain_in_path_does_not_trigger(self):
        payload = raw("innocent.com", path=f"/{BLOCKED}/index.html")
        assert spec().matched_domain(payload) is None

    def test_domain_in_other_header_does_not_trigger(self):
        payload = GetRequestSpec(
            domain="innocent.com",
            headers=(("Referer", f"http://{BLOCKED}/page"),),
        ).to_bytes()
        assert spec().matched_domain(payload) is None

    def test_domain_in_host_field_triggers_even_with_odd_path(self):
        payload = raw(BLOCKED, path="/innocent.com")
        assert spec().matched_domain(payload) == BLOCKED


class TestKeywordCase:
    def test_exact_case_box_missed_by_case_fudging(self):
        for keyword in ("HOst", "HoST", "HoSt", "HOST", "host"):
            payload = raw(host_keyword=keyword)
            assert spec(exact_keyword_case=True).matched_domain(payload) is None

    def test_case_insensitive_box_catches_case_fudging(self):
        for keyword in ("HOst", "HOST", "host"):
            payload = raw(host_keyword=keyword)
            assert (spec(exact_keyword_case=False).matched_domain(payload)
                    == BLOCKED)


class TestWhitespaceStrictness:
    def test_strict_box_missed_by_extra_pre_space(self):
        payload = raw(host_pre_space="  ")
        assert spec(strict_value_whitespace=True).matched_domain(payload) is None

    def test_strict_box_missed_by_tab(self):
        payload = raw(host_pre_space="\t")
        assert spec(strict_value_whitespace=True).matched_domain(payload) is None

    def test_strict_box_missed_by_trailing_space(self):
        payload = raw(host_post_space=" ")
        assert spec(strict_value_whitespace=True).matched_domain(payload) is None

    def test_tolerant_box_catches_whitespace_fudging(self):
        tolerant = spec(strict_value_whitespace=False)
        assert tolerant.matched_domain(raw(host_pre_space="   ")) == BLOCKED
        assert tolerant.matched_domain(raw(host_pre_space="\t")) == BLOCKED
        assert tolerant.matched_domain(raw(host_post_space="  ")) == BLOCKED


class TestLastHostOnly:
    def test_trailing_allowed_host_evades_last_only_box(self):
        payload = raw(trailing_raw=b"Host: allowed.com\r\n\r\n")
        assert spec(inspect_last_host_only=True).matched_domain(payload) is None

    def test_trailing_allowed_host_does_not_evade_any_host_box(self):
        payload = raw(trailing_raw=b"Host: allowed.com\r\n\r\n")
        assert spec(inspect_last_host_only=False).matched_domain(payload) == BLOCKED

    def test_last_only_box_triggers_when_last_is_blocked(self):
        payload = GetRequestSpec(
            domain="allowed.com",
            trailing_raw=f"Host: {BLOCKED}\r\n\r\n".encode(),
        ).to_bytes()
        assert spec(inspect_last_host_only=True).matched_domain(payload) == BLOCKED


class TestWwwAlias:
    def test_exact_box_missed_by_www_prefix(self):
        payload = raw(f"www.{BLOCKED}")
        assert spec(match_www_alias=False).matched_domain(payload) is None

    def test_alias_box_catches_www_prefix(self):
        payload = raw(f"www.{BLOCKED}")
        assert spec(match_www_alias=True).matched_domain(payload) == BLOCKED


class TestExtraction:
    def test_extracts_all_host_values_in_order(self):
        payload = (b"GET / HTTP/1.1\r\nHost: a.com\r\nX: y\r\n\r\n"
                   b"Host: b.com\r\n\r\n")
        values = spec().extract_host_values(payload)
        assert values == ["a.com", "b.com"]

    def test_line_without_colon_ignored(self):
        assert spec().extract_host_values(b"Host blocked.com\r\n") == []

    def test_spec_is_hashable_and_frozen(self):
        s = spec()
        with pytest.raises(Exception):
            s.exact_keyword_case = False
        assert hash(s) == hash(spec())
