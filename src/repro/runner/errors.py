"""Structured error taxonomy for campaign orchestration.

Every failure escaping a measurement unit falls into one of three
categories, unifying the ad-hoc handling that used to live in
``experiments/common.py``:

``transient``
    Worth an immediate in-process retry: the fault-injector streams
    advance between attempts, so a re-run genuinely sees different
    conditions (a vantage whose first connection raced a link flap).

``degradable``
    A simulator failure the campaign survives by recording a partial
    entry — the experiment-level analogue of a vantage that died
    mid-campaign.  Only :class:`~repro.netsim.errors.NetSimError`
    (and unit timeouts) qualify.

``fatal``
    Everything else — programming errors must still crash, loudly, so
    a journal never papers over a broken experiment.

``poison``
    A resource failure (today: ``MemoryError``) that poisons the
    process it runs in rather than just the measurement.  Poison
    failures are retried in a fresh worker process and — when they
    repeat — journaled with the durable ``quarantined`` status so the
    campaign can proceed without a babysitter.  The same status is
    applied by the supervisor (:mod:`repro.runner.supervise`) to units
    that repeatedly *kill* their worker outright (OOM-killer, SIGKILL,
    segfaults), which never surface as a Python exception at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.errors import ConnectionError_, NetSimError, PortInUseError

#: Taxonomy category names (also the strings stored in journals).
TRANSIENT = "transient"
DEGRADABLE = "degradable"
FATAL = "fatal"
POISON = "poison"

#: Durable journal status for a unit quarantined after repeatedly
#: crashing its worker (or exhausting its memory budget).  Sits beside
#: ``ok``/``degraded``/``timeout``/``failed``; like ``ok`` it survives
#: a resume untouched — re-running a poison unit would only crash the
#: campaign's workers again.
QUARANTINED = "quarantined"

#: How many extra attempts a transient failure earns inside
#: :func:`repro.experiments.common.run_degradable`.
TRANSIENT_RETRIES = 1


class CampaignError(Exception):
    """Base class for campaign-runner configuration/state errors."""


class JournalError(CampaignError):
    """A journal file could not be created, read, or verified."""


class ResumeMismatch(CampaignError):
    """A resume was attempted against a journal whose recorded
    parameters (seed, scale, fraction, experiment set, fault plan)
    differ from the requested campaign — resuming would silently mix
    incompatible measurements."""


class CampaignDeadline(Exception):
    """The per-campaign wall-clock budget is exhausted; remaining units
    stay un-run (and resumable) rather than half-measured."""


class UnitTimeout(Exception):
    """A measurement unit exceeded its deadline budget.

    Raised cooperatively from inside the discrete-event loop by the
    :class:`~repro.runner.watchdog.Watchdog`; the campaign converts it
    into a recorded :class:`TimeoutDegradation` entry instead of a
    stuck process.
    """

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(detail)
        self.kind = kind
        self.detail = detail


class TransientUnitError(Exception):
    """Raisable by measurement code to mark a failure explicitly
    retryable at the unit level."""


class SimulatedCrash(RuntimeError):
    """Fault injection for crash-safety tests: the campaign process
    "dies" immediately after durably journaling its N-th unit.

    Deliberately not caught anywhere in the runner — it must escape
    exactly like a ``kill -9`` would end the process.
    """


@dataclass(frozen=True)
class TimeoutDegradation:
    """A hang converted into data: one unit's blown deadline budget.

    ``kind`` is ``"sim-steps"``, ``"unit-wall"`` or ``"campaign-wall"``;
    ``detail`` is deterministic (it names the budget, never the elapsed
    time) so resumed and uninterrupted runs render identical tables.
    """

    unit: str
    kind: str
    detail: str

    def describe(self) -> str:
        return f"timeout: {self.unit}: {self.detail}"


#: Failures worth an immediate retry (see module docstring).
TRANSIENT_ERRORS = (TransientUnitError, ConnectionError_, PortInUseError)


def classify_error(exc: BaseException) -> str:
    """Map an exception to its taxonomy category.

    Total by construction: only ``isinstance`` tests, never attribute
    access or stringification, so any ``BaseException`` — including
    ones with hostile ``__str__``/``__getattr__`` — classifies without
    raising (a hypothesis property in ``tests/runner`` holds this).
    """
    if isinstance(exc, UnitTimeout):
        return DEGRADABLE
    if isinstance(exc, TRANSIENT_ERRORS):
        return TRANSIENT
    if isinstance(exc, NetSimError):
        return DEGRADABLE
    if isinstance(exc, MemoryError):
        return POISON
    return FATAL
