"""Cooperative deadline guards for campaign units.

The watchdog hooks the discrete-event engine's per-event step hook
(:attr:`repro.netsim.engine.Network.step_hook`), so any unit that is
actually simulating gets its budgets checked continuously:

* **sim-step budget** (``unit_steps``) — a limit on simulated events
  per unit.  Fully deterministic: the same seed blows the same budget
  at the same event, whether the campaign ran straight through or was
  killed and resumed, so tables stay byte-identical.
* **wall budgets** (``unit_wall`` / ``campaign_wall``) — real-clock
  guards converting hangs into recorded timeouts instead of stuck
  processes.  Inherently non-deterministic; use step budgets where
  byte-identity matters.

"Cooperative" is load-bearing: a unit spinning in pure Python without
touching the network cannot be interrupted mid-loop — the campaign
still bounds it between units via :meth:`Watchdog.check_campaign`.
With ``workers > 1`` that hole is closed: the supervised pool
(:mod:`repro.runner.supervise`) enforces ``unit_wall``
non-cooperatively by killing the worker process on deadline and
journaling the unit as a ``timeout`` with the same detail text this
watchdog writes.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from .errors import CampaignDeadline, UnitTimeout

#: Wall-clock reads are amortized over this many step-hook calls.
WALL_CHECK_EVERY = 128


class Watchdog:
    """Per-unit and per-campaign deadline budgets."""

    def __init__(self, unit_steps: Optional[int] = None,
                 unit_wall: Optional[float] = None,
                 campaign_wall: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.unit_steps = unit_steps
        self.unit_wall = unit_wall
        self.campaign_wall = campaign_wall
        self._clock = clock
        self._campaign_start: Optional[float] = None
        self._network = None
        self._steps = 0
        self._unit_start_wall = 0.0

    # ------------------------------------------------------------------
    # Campaign scope
    # ------------------------------------------------------------------

    def start_campaign(self) -> None:
        self._campaign_start = self._clock()

    def campaign_elapsed(self) -> float:
        if self._campaign_start is None:
            return 0.0
        return self._clock() - self._campaign_start

    def check_campaign(self) -> None:
        """Between units: raise once the campaign budget is gone."""
        if (self.campaign_wall is not None
                and self.campaign_elapsed() > self.campaign_wall):
            raise CampaignDeadline(
                f"campaign wall budget {self.campaign_wall:g}s exhausted")

    # ------------------------------------------------------------------
    # Unit scope
    # ------------------------------------------------------------------

    def begin_unit(self, network) -> None:
        """Arm the budgets around one unit's network."""
        self._network = network
        self._steps = 0
        self._unit_start_wall = self._clock()
        network.step_hook = self._on_step

    def end_unit(self) -> int:
        """Disarm; returns simulated events the unit consumed."""
        if self._network is not None:
            self._network.step_hook = None
            self._network = None
        return self._steps

    def _on_step(self) -> None:
        self._steps += 1
        if self.unit_steps is not None and self._steps > self.unit_steps:
            raise UnitTimeout(
                "sim-steps",
                f"unit exceeded {self.unit_steps} simulated events")
        if self._steps % WALL_CHECK_EVERY:
            return
        now = self._clock()
        if (self.unit_wall is not None
                and now - self._unit_start_wall > self.unit_wall):
            raise UnitTimeout(
                "unit-wall",
                f"unit exceeded {self.unit_wall:g}s wall budget")
        if (self.campaign_wall is not None
                and self._campaign_start is not None
                and now - self._campaign_start > self.campaign_wall):
            raise UnitTimeout(
                "campaign-wall",
                f"campaign wall budget {self.campaign_wall:g}s exhausted "
                f"mid-unit")
