#!/usr/bin/env python3
"""Surveying DNS censorship in the government ISPs (MTNL & BSNL).

Reproduces the section 3.2 / 4.1 pipeline: sweep the ISP address space
for open resolvers, interrogate each with the PBW list to find the
censorious ones, run the DNS variant of Iterative Network Tracing to
prove poisoning (not injection), and print the Figure 2 aggregates —
then demonstrate the trivial fix: resolve elsewhere.

Run:  python examples/dns_survey.py [--scale 0.2]
"""

import argparse

from repro.core.measure import (
    dns_iterative_trace,
    resolver_service_at,
    scan_isp_resolvers,
)
from repro.core.measure.metrics import consistency
from repro.core.vantage import VantagePoint
from repro.isps import build_world


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=1808)
    args = parser.parse_args()

    print(f"Building world (seed={args.seed}, scale={args.scale})...")
    world = build_world(seed=args.seed, scale=args.scale)

    for isp in ("mtnl", "bsnl"):
        deployment = world.isp(isp)
        print(f"\n=== {isp.upper()} ===")
        print(f"Sweeping {deployment.pool} for open resolvers and "
              f"interrogating each with {len(world.corpus)} PBWs...")
        scan = scan_isp_resolvers(world, isp)
        print(f"  open resolvers: {len(scan.open_resolvers)} "
              f"(swept {scan.swept_addresses} addresses)")
        print(f"  censorious:     {len(scan.censorious)} "
              f"(coverage {scan.coverage:.1%})")
        print(f"  consistency:    {consistency(dict(scan.censorious)):.1%}")
        print(f"  blocked union:  {len(scan.blocked_union())} domains")

        if not scan.censorious:
            continue

        resolver_ip = scan.censorious_resolvers[0]
        service = resolver_service_at(world.network, resolver_ip)
        blocked = sorted(scan.censorious[resolver_ip])[0]
        print(f"\n  Tracing the manipulated answer for {blocked} "
              f"via {resolver_ip}...")
        trace = dns_iterative_trace(world, deployment.client,
                                    resolver_ip, blocked)
        print(f"    answer appears at hop {trace.answer_hop} of "
              f"{trace.resolver_hop} -> mechanism: {trace.mechanism}")
        print(f"    manipulated answer: {trace.answer_ips}")

        vantage = VantagePoint.inside(world, isp)
        poisoned = vantage.resolve(blocked, resolver_ip=resolver_ip)
        honest = vantage.resolve(blocked,
                                 resolver_ip=world.google_dns.ip)
        print(f"\n  Evasion: ISP resolver says {poisoned.ips}, "
              f"Google DNS says {honest.ips}")
        assert service is not None and service.config.is_poisoned


if __name__ == "__main__":
    main()
