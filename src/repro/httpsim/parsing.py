"""Server-side HTTP request parsing — RFC 2616 style, lenient.

The evasions of section 5 exploit a parsing *asymmetry*: origin servers
follow RFC 2616 (header names case-insensitive, linear whitespace
around values tolerated) while middleboxes do exact string matching.
This module implements the *server* side of that asymmetry.  Middlebox
matching lives in :mod:`repro.middlebox.triggers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

_KNOWN_METHODS = {"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "TRACE"}

#: Hard limits the fuzzer drove in: pathological inputs are classified
#: as ``malformed`` (the server answers 400) instead of being parsed at
#: unbounded cost or crashing an experiment mid-campaign.
MAX_UNIT_BYTES = 1 << 20          # one request unit, head included
MAX_HEADER_VALUE_BYTES = 64 << 10  # any single header value
MAX_HEADER_COUNT = 256


@dataclass
class ParsedRequest:
    """One request unit extracted from a TCP byte stream.

    ``malformed`` is set (with a reason) when the unit does not parse as
    a valid request — the server answers 400 Bad Request, which is how
    the covert-IM evasion's trailing pseudo-request gets answered.
    """

    method: str = ""
    path: str = ""
    version: str = ""
    headers: List[Tuple[str, str]] = field(default_factory=list)
    malformed: Optional[str] = None
    raw: bytes = b""

    def header(self, name: str) -> Optional[str]:
        """First header value matching *name* case-insensitively,
        with surrounding linear whitespace stripped (RFC 2616 §4.2)."""
        wanted = name.lower()
        for header_name, value in self.headers:
            if header_name.lower() == wanted:
                return value
        return None

    def header_values(self, name: str) -> List[str]:
        wanted = name.lower()
        return [value for header_name, value in self.headers
                if header_name.lower() == wanted]

    @property
    def host(self) -> Optional[str]:
        return self.header("Host")


def split_request_units(stream: bytes) -> List[bytes]:
    """Split a request byte stream at CRLF CRLF boundaries.

    Servers treat ``\\r\\n\\r\\n`` as end-of-request; whatever follows is
    the next (pipelined) request unit.  A trailing fragment without the
    terminator is still returned (it will parse as malformed/incomplete).
    """
    units = []
    rest = stream
    while rest:
        head, sep, after = rest.partition(b"\r\n\r\n")
        if not sep:
            units.append(rest)
            break
        units.append(head + sep)
        rest = after
    return units


def parse_request_unit(raw: bytes) -> ParsedRequest:
    """Parse one request unit leniently (RFC 2616 server behaviour).

    Lenient does not mean unbounded: adversarial inputs surfaced by
    ``repro.fuzz`` (NUL bytes, bare-LF line endings, oversized or
    uncountably many headers, empty units) are *classified* — the
    request parses to ``malformed=<reason>`` and the server answers
    400 — rather than being half-parsed or raising mid-experiment.
    """
    request = ParsedRequest(raw=raw)
    if len(raw) > MAX_UNIT_BYTES:
        request.malformed = "oversized-unit"
        return request
    if not raw.strip(b"\r\n\t "):
        # CRLF-only / whitespace-only streams produce empty units.
        request.malformed = "empty-unit"
        return request
    if b"\x00" in raw:
        request.malformed = "nul-byte"
        return request
    if b"\n" in raw.replace(b"\r\n", b""):
        # A bare LF (no preceding CR): strict CRLF framing only —
        # accepting it would silently change which bytes count as a
        # Host line relative to the CRLF-scanning middleboxes.
        request.malformed = "bare-lf-line"
        return request
    text = raw.decode("latin-1", errors="replace")
    lines = text.split("\r\n")
    request_line = lines[0].strip()
    parts = request_line.split()
    if len(parts) != 3:
        request.malformed = "bad-request-line"
        return request
    method, path, version = parts
    if method.upper() not in _KNOWN_METHODS:
        request.malformed = "unknown-method"
        return request
    if not version.upper().startswith("HTTP/"):
        request.malformed = "bad-version"
        return request
    request.method = method.upper()
    request.path = path
    request.version = version.upper()
    for line in lines[1:]:
        if not line.strip():
            continue
        name, colon, value = line.partition(":")
        if not colon:
            request.malformed = "bad-header-line"
            return request
        if len(value) > MAX_HEADER_VALUE_BYTES:
            request.malformed = "oversized-header-value"
            return request
        if len(request.headers) >= MAX_HEADER_COUNT:
            request.malformed = "too-many-headers"
            return request
        # RFC 2616: field names are case-insensitive tokens; any amount
        # of leading/trailing LWS around the value is semantically
        # irrelevant.  This is precisely why "Host:  blocked.com " and
        # "HOst: blocked.com" reach the origin intact while strict
        # middlebox matchers miss them.
        request.headers.append((name.strip(), value.strip()))
    host_values = request.header_values("Host")
    if request.version == "HTTP/1.1":
        if not host_values:
            request.malformed = "missing-host"
        elif len(set(host_values)) > 1:
            # RFC 7230 §5.4: multiple differing Host fields -> 400.
            request.malformed = "duplicate-host"
    return request


def parse_request_stream(stream: bytes) -> List[ParsedRequest]:
    """Parse an entire client byte stream into request units."""
    return [parse_request_unit(unit) for unit in split_request_units(stream)]
