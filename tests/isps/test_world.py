"""World assembly: structure, determinism, ISP deployments."""

import pytest

from repro.httpsim import GetRequestSpec, fetch_url, http_fetch
from repro.isps import (
    DNS_FILTERING_ISPS,
    HTTP_FILTERING_ISPS,
    PROFILES,
    build_world,
)
from repro.middlebox import identify_isp, looks_like_block_page
from repro.netsim import Prefix


class TestAssembly:
    def test_all_isps_present(self, small_world):
        assert set(small_world.isps) == set(PROFILES)

    def test_every_isp_has_client_and_border(self, small_world):
        for deployment in small_world.isps.values():
            assert deployment.client is not None
            assert deployment.border is not None
            assert deployment.aggregation

    def test_http_isps_have_middleboxes(self, small_world):
        for name in HTTP_FILTERING_ISPS:
            assert small_world.isp(name).middleboxes

    def test_non_censoring_stubs_have_no_own_boxes(self, small_world):
        for name in ("nkn", "sify", "siti", "mtnl", "bsnl"):
            assert not small_world.isp(name).middleboxes

    def test_dns_isps_have_poisoned_resolvers(self, small_world):
        for name in DNS_FILTERING_ISPS:
            deployment = small_world.isp(name)
            assert deployment.poisoned_resolver_ips()
            assert deployment.default_resolver_ip in \
                deployment.poisoned_resolver_ips()

    def test_http_isps_default_resolver_is_honest(self, small_world):
        for name in HTTP_FILTERING_ISPS:
            deployment = small_world.isp(name)
            assert deployment.default_resolver_ip == \
                deployment.honest_resolver_ip

    def test_middlebox_kinds_match_profiles(self, small_world):
        assert all(b.kind == "wiretap"
                   for b in small_world.isp("airtel").middleboxes)
        assert all(b.kind == "wiretap"
                   for b in small_world.isp("jio").middleboxes)
        assert all(b.kind == "interceptive"
                   for b in small_world.isp("idea").middleboxes)
        assert all(b.kind == "interceptive"
                   for b in small_world.isp("vodafone").middleboxes)

    def test_peering_boxes_match_table3(self, small_world):
        assert set(small_world.isp("vodafone").peering_boxes) == {"nkn"}
        assert set(small_world.isp("tata").peering_boxes) == {
            "nkn", "sify", "mtnl", "bsnl"}
        assert set(small_world.isp("airtel").peering_boxes) == {
            "siti", "sify", "mtnl", "bsnl"}

    def test_isp_owning(self, small_world):
        airtel_client_ip = small_world.client_of("airtel").ip
        assert small_world.isp_owning(airtel_client_ip) == "airtel"
        assert small_world.isp_owning("8.8.8.8") is None

    def test_scan_targets_inside_isp_prefixes(self, small_world):
        for deployment in small_world.isps.values():
            pool = deployment.pool
            for ip in deployment.scan_targets:
                assert pool.contains(ip)

    def test_subset_world_includes_upstreams(self):
        world = build_world(scale=0.1, isp_names=["nkn"])
        assert "vodafone" in world.isps
        assert "tata" in world.isps


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_world(seed=7, scale=0.1, isp_names=["airtel"])
        b = build_world(seed=7, scale=0.1, isp_names=["airtel"])
        assert [s.domain for s in a.corpus] == [s.domain for s in b.corpus]
        assert a.blocklists.http == b.blocklists.http
        boxes_a = [box.spec.blocklist for box in a.isp("airtel").middleboxes]
        boxes_b = [box.spec.blocklist for box in b.isp("airtel").middleboxes]
        assert boxes_a == boxes_b

    def test_different_seed_differs(self):
        a = build_world(seed=7, scale=0.1, isp_names=["airtel"])
        b = build_world(seed=8, scale=0.1, isp_names=["airtel"])
        assert [s.domain for s in a.corpus] != [s.domain for s in b.corpus]


class TestConnectivity:
    def test_client_can_fetch_unblocked_site(self, small_world):
        world = small_world
        blocked_any = world.blocklists.all_blocked_domains()
        site = next(s for s in world.corpus
                    if s.domain not in blocked_any and s.hosting == "normal")
        for isp in ("airtel", "nkn", "jio", "mtnl"):
            client = world.client_of(isp)
            ip = world.hosting.ip_for(site.domain, "in")
            result = fetch_url(world.network, client, ip, site.domain)
            assert result.ok, f"{isp} could not fetch clean site"
            assert result.first_response.status == 200

    def test_vantage_point_can_reach_isp_scan_targets(self, small_world):
        world = small_world
        vp = world.vantage_points[0]
        for isp in HTTP_FILTERING_ISPS:
            target = world.isp(isp).scan_targets[0]
            request = GetRequestSpec(domain="probe.example").to_bytes()
            result = http_fetch(world.network, vp, target, request)
            assert result.ok
            assert result.first_response.status == 404

    def test_idea_censors_most_of_its_blocklist_inline(self, small_world):
        world = small_world
        client = world.client_of("idea")
        blocked = sorted(world.blocklists.http["idea"])
        censored = 0
        for domain in blocked:
            ip = world.hosting.ip_for(domain, "in")
            result = fetch_url(world.network, client, ip, domain)
            response = result.first_response
            if response is not None and looks_like_block_page(response.body):
                censored += 1
                assert identify_isp(response.body) == "idea"
        # Idea: coverage .92 x consistency .77 -> most sites censored.
        assert censored >= len(blocked) * 0.45

    def test_jio_invisible_from_outside(self, small_world):
        world = small_world
        vp = world.vantage_points[1]
        target = world.isp("jio").scan_targets[0]
        for domain in sorted(world.blocklists.http["jio"])[:10]:
            request = GetRequestSpec(domain=domain).to_bytes()
            result = http_fetch(world.network, vp, target, request)
            response = result.first_response
            assert response is not None
            assert not looks_like_block_page(response.body)

    def test_nkn_suffers_vodafone_collateral(self, small_world):
        world = small_world
        client = world.client_of("nkn")
        box = world.isp("vodafone").peering_boxes["nkn"]
        resets = 0
        for domain in sorted(box.spec.blocklist):
            ip = world.hosting.ip_for(domain, "in")
            result = fetch_url(world.network, client, ip, domain)
            if result.got_rst and not result.ok:
                resets += 1
        # Most NKN traffic transits Vodafone (weight 8:1).
        assert resets >= len(box.spec.blocklist) * 0.5
