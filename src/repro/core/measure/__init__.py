"""repro.core.measure — the paper's measurement toolkit."""

from .attribution import AttributionResult, attribute_censorship
from .classify import (
    BehaviouralClassification,
    MiddleboxClassification,
    classify_by_behaviour,
    classify_middlebox,
    find_controlled_target,
    find_triggering_domain,
)
from .collateral import (
    CollateralReport,
    measure_collateral_express,
    measure_collateral_fetch,
)
from .coverage import (
    CoverageResult,
    PathProbe,
    measure_coverage_inside,
    measure_coverage_outside,
    probe_path,
)
from .detector import (
    DetectorRun,
    DetectorSiteOutcome,
    detect_site,
    run_detector,
)
from .dns_detect import (
    DNSDetectionOutcome,
    DNSDetectionRun,
    detect_dns_filtering,
)
from .fastprobe import (
    ExpressDNSAnswer,
    ExpressVerdict,
    canonical_payload,
    express_canonical_probe,
    express_dns_probe,
    express_http_probe,
    middleboxes_along,
    resolver_service_at,
)
from .metrics import (
    PrecisionRecall,
    blocking_series,
    consistency,
    coverage,
    per_site_blocking_fractions,
    precision_recall,
)
from .ooni import (
    BLOCKING_DNS,
    BLOCKING_HTTP,
    BLOCKING_NONE,
    BLOCKING_TCP,
    OONIRun,
    OONISiteResult,
    run_ooni,
    web_connectivity,
)
from .probes import CraftedFlow, ProbeObservation, RawProbeSession
from .reporting import (
    blocking_series_csv,
    coverage_report,
    coverage_series_csv,
    ooni_run_report,
    ooni_run_to_json,
    precision_recall_table,
    resolver_scan_report,
    resolver_series_csv,
)
from .resolver_scan import (
    ResolverScanResult,
    identify_censorious,
    scan_isp_resolvers,
    sweep_open_resolvers,
)
from .stateful import (
    FlowTimeoutEstimate,
    StatefulnessReport,
    estimate_flow_timeout,
    probe_statefulness,
)
from .tcpip import TCPIPFilterReport, detect_tcpip_filtering
from .tracer import (
    DNSTraceResult,
    HTTPTraceResult,
    dns_iterative_trace,
    http_iterative_trace,
)
from .trigger import CRAFTED_VARIANTS, TriggerAnalysis, analyze_trigger

__all__ = [
    "BLOCKING_DNS",
    "BLOCKING_HTTP",
    "BLOCKING_NONE",
    "BLOCKING_TCP",
    "CRAFTED_VARIANTS",
    "CollateralReport",
    "CoverageResult",
    "CraftedFlow",
    "DNSDetectionOutcome",
    "DNSDetectionRun",
    "DNSTraceResult",
    "DetectorRun",
    "DetectorSiteOutcome",
    "ExpressDNSAnswer",
    "ExpressVerdict",
    "FlowTimeoutEstimate",
    "HTTPTraceResult",
    "AttributionResult",
    "BehaviouralClassification",
    "MiddleboxClassification",
    "OONIRun",
    "OONISiteResult",
    "PathProbe",
    "PrecisionRecall",
    "ProbeObservation",
    "RawProbeSession",
    "ResolverScanResult",
    "StatefulnessReport",
    "TCPIPFilterReport",
    "TriggerAnalysis",
    "analyze_trigger",
    "attribute_censorship",
    "blocking_series",
    "blocking_series_csv",
    "canonical_payload",
    "classify_by_behaviour",
    "classify_middlebox",
    "consistency",
    "coverage",
    "coverage_report",
    "coverage_series_csv",
    "detect_dns_filtering",
    "detect_site",
    "detect_tcpip_filtering",
    "dns_iterative_trace",
    "estimate_flow_timeout",
    "express_canonical_probe",
    "express_dns_probe",
    "express_http_probe",
    "find_controlled_target",
    "find_triggering_domain",
    "http_iterative_trace",
    "identify_censorious",
    "measure_collateral_express",
    "measure_collateral_fetch",
    "measure_coverage_inside",
    "measure_coverage_outside",
    "middleboxes_along",
    "ooni_run_report",
    "ooni_run_to_json",
    "per_site_blocking_fractions",
    "precision_recall",
    "precision_recall_table",
    "probe_path",
    "probe_statefulness",
    "resolver_scan_report",
    "resolver_series_csv",
    "resolver_service_at",
    "run_detector",
    "run_ooni",
    "scan_isp_resolvers",
    "sweep_open_resolvers",
    "web_connectivity",
]
