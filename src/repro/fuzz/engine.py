"""The fuzz campaign engine: mutate → execute → oracle → minimize.

Determinism contract: a run is a pure function of ``(seed, iterations,
targets, corpus)``.  Iteration *i* of target *t* derives its own RNG
from ``(seed, t, i)``, so it does not depend on which iterations ran
before it — which is what makes a crashed campaign resumable *and*
byte-identical to an uninterrupted one.  Journal records carry no
wall-clock fields for the same reason.

Resume truncates the journal back to the last checkpoint and re-runs
from there; re-executed iterations regenerate exactly the records the
crashed run would have written.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runner.errors import JournalError
from ..runner.journal import Journal, canonical_json
from .corpus import (
    TARGETS,
    decode_entry,
    encode_entry,
    load_corpus_dir,
    seed_corpus,
    write_fixture,
)
from .harness import run_dns_probe, run_session_schedule, run_tcp_schedule
from .minimize import minimize
from .mutators import mutate
from .oracles import DiffResult, check_http_invariants, diff_http
from .rng import derive_rng

JOURNAL_NAME = "fuzz-journal.jsonl"
FORMAT_VERSION = 1


@dataclass
class FuzzReport:
    """Outcome of one campaign (or one resumed leg of it)."""

    seed: int
    iterations: int
    targets: List[str]
    findings: int = 0
    per_target: Dict[str, int] = field(default_factory=dict)
    classes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    journal_path: str = ""
    resumed_from: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} iterations={self.iterations} "
            f"targets={','.join(self.targets)}",
        ]
        for target in self.targets:
            skipped = self.resumed_from.get(target, 0)
            note = f" (resumed at {skipped})" if skipped else ""
            lines.append(f"  {target}: {self.per_target.get(target, 0)} "
                         f"finding(s){note}")
            for cls, count in sorted(self.classes.get(target, {}).items()):
                lines.append(f"    known class {cls}: {count}")
        lines.append(f"total findings: {self.findings}")
        lines.append(f"journal: {self.journal_path}")
        return "\n".join(lines)


class FuzzEngine:
    """Drives one deterministic fuzz campaign through the journal."""

    def __init__(
        self,
        seed: int = 1808,
        iterations: int = 2000,
        targets: Optional[List[str]] = None,
        *,
        run_dir: str = "fuzz-run",
        corpus_dir: Optional[str] = None,
        checkpoint_every: int = 500,
        fixtures_dir: Optional[str] = None,
        resume: bool = False,
        crash_after_appends: Optional[int] = None,
    ) -> None:
        self.seed = seed
        self.iterations = iterations
        self.targets = list(targets) if targets else list(TARGETS)
        for target in self.targets:
            if target not in TARGETS:
                raise ValueError(f"unknown fuzz target {target!r}")
        self.run_dir = run_dir
        self.corpus_dir = corpus_dir
        self.checkpoint_every = max(1, checkpoint_every)
        self.fixtures_dir = fixtures_dir
        self.resume = resume
        #: Test hook: raise after N journal appends (simulated crash).
        self.crash_after_appends = crash_after_appends
        self._appends = 0
        self.journal_path = os.path.join(run_dir, JOURNAL_NAME)

    # ------------------------------------------------------------------
    # Journal lifecycle
    # ------------------------------------------------------------------

    def _meta_record(self) -> Dict:
        return {
            "type": "meta",
            "kind": "fuzz",
            "version": FORMAT_VERSION,
            "seed": self.seed,
            "iterations": self.iterations,
            "targets": self.targets,
        }

    def _open_fresh(self) -> Journal:
        if os.path.exists(self.journal_path):
            # Unlike campaign journals, fuzz journals are cheap to
            # regenerate; a fresh run (no --resume) replaces the old one
            # so "run twice, compare" workflows need no cleanup step.
            os.remove(self.journal_path)
        journal = Journal.create(self.journal_path)
        self._append(journal, self._meta_record())
        return journal

    def _open_resume(self) -> Journal:
        records, _ = Journal.load(self.journal_path)
        if not records or records[0].get("type") != "meta":
            raise JournalError(f"{self.journal_path}: not a fuzz journal")
        meta = records[0]
        mine = self._meta_record()
        for key in ("kind", "version", "seed", "iterations", "targets"):
            if meta.get(key) != mine[key]:
                raise JournalError(
                    f"{self.journal_path}: journal was written by a "
                    f"different campaign ({key}={meta.get(key)!r}, "
                    f"this run has {mine[key]!r})")
        # Truncate back to the last checkpoint: iterations after it are
        # re-run, regenerating byte-identical records (iteration RNG is
        # position-independent).
        keep = 1
        for index, record in enumerate(records):
            if record.get("type") in ("meta", "checkpoint"):
                keep = index + 1
        kept = records[:keep]
        with open(self.journal_path, "w", encoding="utf-8") as fh:
            for record in kept:
                fh.write(canonical_json(record) + "\n")
        journal = Journal(self.journal_path)
        journal._prev = kept[-1]["hash"]
        journal._seq = kept[-1]["seq"] + 1
        self._resume_records = kept
        return journal

    def _append(self, journal: Journal, record: Dict) -> None:
        journal.append(record)
        self._appends += 1
        if (self.crash_after_appends is not None
                and self._appends >= self.crash_after_appends):
            raise RuntimeError("injected fuzz-engine crash (test hook)")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> FuzzReport:
        report = FuzzReport(seed=self.seed, iterations=self.iterations,
                            targets=self.targets,
                            journal_path=self.journal_path)
        self._resume_records: List[Dict] = []
        if self.resume and os.path.exists(self.journal_path):
            journal = self._open_resume()
        else:
            journal = self._open_fresh()

        state: Dict[str, Dict] = {
            target: {"done": 0, "findings": 0, "classes": {}}
            for target in self.targets
        }
        for record in self._resume_records:
            target = record.get("target")
            if target not in state:
                continue
            if record["type"] == "checkpoint":
                state[target]["done"] = record["done"]
                state[target]["findings"] = record["findings"]
                state[target]["classes"] = dict(record["classes"])

        import time

        metrics: Dict[str, Dict] = {}
        for target in self.targets:
            done = state[target]["done"]
            if done:
                report.resumed_from[target] = done
            corpus = seed_corpus(target)
            if self.corpus_dir:
                corpus = corpus + load_corpus_dir(self.corpus_dir, target)
            findings = state[target]["findings"]
            classes = state[target]["classes"]
            target_start = time.monotonic()
            for iteration in range(done, self.iterations):
                rng = derive_rng(self.seed, target, iteration)
                entry = mutate(target, rng, corpus)
                result = self.execute(target, entry)
                for cls, count in result.classes.items():
                    classes[cls] = classes.get(cls, 0) + count
                for oracle, detail in result.violations:
                    findings += 1
                    minimized = self._minimize(target, entry, oracle)
                    self._record_finding(journal, target, iteration,
                                         oracle, detail, minimized)
                at_end = iteration + 1 == self.iterations
                if (iteration + 1) % self.checkpoint_every == 0 or at_end:
                    self._append(journal, {
                        "type": "checkpoint",
                        "target": target,
                        "done": iteration + 1,
                        "findings": findings,
                        "classes": dict(sorted(classes.items())),
                    })
            report.per_target[target] = findings
            report.classes[target] = classes
            report.findings += findings
            wall = time.monotonic() - target_start
            executed = self.iterations - done
            metrics[target] = {
                "iterations": executed,
                "wall_seconds": round(wall, 3),
                "iterations_per_second":
                    round(executed / wall, 1) if wall > 0 else None,
                "findings": findings,
            }
        self._append(journal, {"type": "end", "findings": report.findings})
        self._write_metrics(metrics)
        return report

    def _write_metrics(self, metrics: Dict[str, Dict]) -> None:
        """Iteration-rate sidecar (``fuzz-metrics.json``).

        Wall-clock rates never enter the journal — the journal must
        stay byte-identical across runs; this sidecar is where the
        nondeterministic throughput numbers live.
        """
        import json

        path = os.path.join(os.path.dirname(self.journal_path),
                            "fuzz-metrics.json")
        try:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump({"per_target": metrics}, fh, indent=2,
                          sort_keys=True)
                fh.write("\n")
        except OSError:  # pragma: no cover - diagnostics only
            pass

    def execute(self, target: str, entry) -> DiffResult:
        """Run one entry through its harness; exceptions become
        findings (the 'no parser raises' oracle)."""
        try:
            if target == "http":
                result = DiffResult()
                violation = check_http_invariants(entry)
                if violation is not None:
                    result.violations.append(violation)
                return result
            if target == "diff":
                return diff_http(entry)
            if target == "tcp":
                return run_tcp_schedule(entry)
            if target == "dns":
                return run_dns_probe(entry)
            if target == "session":
                return run_session_schedule(entry)
            raise ValueError(f"unknown fuzz target {target!r}")
        except Exception as exc:  # noqa: BLE001 - the oracle itself
            result = DiffResult()
            result.violations.append(
                ("exception", f"{type(exc).__name__}: {exc}"))
            return result

    def _minimize(self, target: str, entry, oracle: str):
        def still_fails(candidate) -> bool:
            outcome = self.execute(target, candidate)
            return any(kind == oracle for kind, _ in outcome.violations)

        return minimize(target, entry, still_fails)

    def _record_finding(self, journal: Journal, target: str, iteration: int,
                        oracle: str, detail: str, minimized) -> None:
        self._append(journal, {
            "type": "finding",
            "target": target,
            "iteration": iteration,
            "oracle": oracle,
            "detail": detail,
            "entry": encode_entry(target, minimized),
        })
        if self.fixtures_dir:
            write_fixture(self.fixtures_dir, target, minimized,
                          oracle=oracle, detail=detail)


def replay_fixture(payload: Dict) -> DiffResult:
    """Re-run one fixture dict (as loaded by ``corpus.load_fixture``)."""
    engine = FuzzEngine(iterations=0)
    target = payload["target"]
    entry = payload.get("decoded")
    if entry is None:
        entry = decode_entry(target, payload["entry"])
    return engine.execute(target, entry)
