"""Per-ISP blocklists over the PBW corpus.

Table 2 reports how many of the 1,200 PBWs each HTTP-censoring ISP
blocks (Airtel 234, Idea 338, Vodafone 483, Jio 200); MTNL and BSNL
block via DNS instead.  The paper also shows blocklists overlap but are
far from identical across ISPs ("incoherent censorship policies"), and
that stale entries persist: dead sites remain blocked (section 6.3).

Lists are sampled by scoring each site with a category-driven base
sensitivity plus per-ISP jitter, then taking the ISP's top-k — porn and
escort content is blocked almost everywhere, politics and tools only by
some, giving the natural partial overlap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from .corpus import Corpus

#: Target blocklist sizes from Table 2 (HTTP) plus TATA (the Table 3
#: transit censor) and the DNS-censoring ISPs of Figure 2.
HTTP_BLOCKLIST_SIZES: Dict[str, int] = {
    "airtel": 234,
    "idea": 338,
    "vodafone": 483,
    "jio": 200,
    "tata": 160,
}

DNS_BLOCKLIST_SIZES: Dict[str, int] = {
    "mtnl": 450,
    "bsnl": 280,
}

#: How objectionable each category is to the average Indian censor.
CATEGORY_SENSITIVITY: Dict[str, float] = {
    "porn": 0.90,
    "escort": 0.80,
    "torrent": 0.62,
    "tools": 0.50,
    "politics": 0.42,
    "music": 0.30,
    "social": 0.25,
}

#: Per-ISP jitter: how idiosyncratic this ISP's ordering is.
ISP_JITTER: Dict[str, float] = {
    "airtel": 0.25,
    "idea": 0.25,
    "vodafone": 0.35,
    "jio": 0.30,
    "tata": 0.30,
    "mtnl": 0.30,
    "bsnl": 0.35,
}


@dataclass
class BlocklistPlan:
    """The blocklists every censoring deployment works from."""

    http: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    dns: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def all_blocked_domains(self) -> FrozenSet[str]:
        merged: set = set()
        for blocked in list(self.http.values()) + list(self.dns.values()):
            merged |= blocked
        return frozenset(merged)

    def union_http(self) -> FrozenSet[str]:
        merged: set = set()
        for blocked in self.http.values():
            merged |= blocked
        return frozenset(merged)


def _isp_blocklist(corpus: Corpus, isp: str, size: int,
                   seed: int) -> FrozenSet[str]:
    rng = random.Random(f"blocklist|{seed}|{isp}")
    jitter = ISP_JITTER.get(isp, 0.3)
    scored = []
    for site in corpus:
        base = CATEGORY_SENSITIVITY[site.category]
        score = base + rng.uniform(-jitter, jitter)
        scored.append((score, site.domain))
    scored.sort(reverse=True)
    return frozenset(domain for _, domain in scored[:size])


def build_blocklists(corpus: Corpus, seed: int = 1808,
                     scale: float = 1.0) -> BlocklistPlan:
    """Construct the per-ISP HTTP and DNS blocklists.

    ``scale`` shrinks list sizes proportionally for reduced-size worlds
    (tests); the full-size world uses scale 1.0.
    """
    plan = BlocklistPlan()
    for isp, size in HTTP_BLOCKLIST_SIZES.items():
        scaled = max(2, round(size * scale))
        plan.http[isp] = _isp_blocklist(corpus, isp, scaled, seed)
    for isp, size in DNS_BLOCKLIST_SIZES.items():
        scaled = max(2, round(size * scale))
        plan.dns[isp] = _isp_blocklist(corpus, isp, scaled, seed)
    return plan


def overlap_fraction(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """Jaccard overlap between two blocklists."""
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)
