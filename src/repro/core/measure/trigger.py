"""What triggers the middlebox?  The section 3.4-III/IV experiments.

Three questions, answered exactly the way the paper answers them:

1. **Request or response?**  Following one handshake, send two GETs:
   the first with TTL n−1 (dies before the site, can elicit no
   response), the second with TTL n.  Censorship for the n−1 request
   rules out response-only inspection (possibility 2).  A crafted
   request the middlebox cannot parse but the origin can — which then
   renders real censored content uncensored — rules out response
   inspection entirely (possibility 3), leaving request-only
   (possibility 1).

2. **Which field?**  Fudge the requested domain's position: Host set
   to an uncensored domain with the blocked name embedded in the path
   or another header must not trigger; only the Host field does.

3. Both probes run at the penultimate TTL so any response provably
   comes from the middlebox, not the origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ...httpsim.message import GetRequestSpec
from ...netsim.devices import Host
from ..vantage import VantagePoint
from .probes import CraftedFlow

#: The crafted header variants tried when testing possibility 3.  At
#: least one must slip past every middlebox family (section 5).
CRAFTED_VARIANTS = (
    ("case-fudged keyword", lambda d: GetRequestSpec(domain=d,
                                                     host_keyword="HOst")),
    ("double-space value", lambda d: GetRequestSpec(domain=d,
                                                    host_pre_space="  ")),
    ("tab value", lambda d: GetRequestSpec(domain=d, host_pre_space="\t")),
    ("trailing uncensored Host",
     lambda d: GetRequestSpec(
         domain=d, trailing_raw=b"Host: example-allowed.org\r\n\r\n")),
)


@dataclass
class TriggerAnalysis:
    """Conclusions of the trigger experiments for one ISP."""

    isp: str
    dst_ip: str = ""
    blocked_domain: str = ""
    hops_to_site: int = 0
    censored_at_ttl_n_minus_1: bool = False
    censored_at_ttl_n: bool = False
    crafted_variant_bypassing: Optional[str] = None
    crafted_fetched_real_content: bool = False
    host_field_triggers: bool = False
    domain_in_path_triggers: bool = False
    domain_in_other_header_triggers: bool = False

    @property
    def possibility_2_ruled_out(self) -> bool:
        """Middlebox cannot be response-only: the TTL n−1 request never
        reached the site yet drew censorship."""
        return self.censored_at_ttl_n_minus_1

    @property
    def possibility_3_ruled_out(self) -> bool:
        """Middlebox cannot inspect responses at all: a crafted request
        fetched the censored content unmolested."""
        return self.crafted_fetched_real_content

    @property
    def conclusion(self) -> str:
        if (self.possibility_2_ruled_out and self.possibility_3_ruled_out
                and self.host_field_triggers
                and not self.domain_in_path_triggers):
            return ("request-only: middlebox inspects the Host field of "
                    "GET requests (possibility 1)")
        return "inconclusive"


def analyze_trigger(
    world,
    isp_name: str,
    blocked_domain: str,
    *,
    dst_ip: Optional[str] = None,
) -> TriggerAnalysis:
    """Run the full trigger analysis from inside *isp_name*."""
    vantage = VantagePoint.inside(world, isp_name)
    client = vantage.host
    if dst_ip is None:
        dst_ip = world.hosting.ip_for(blocked_domain, region="in")
    network = world.network
    analysis = TriggerAnalysis(isp=isp_name, dst_ip=dst_ip,
                               blocked_domain=blocked_domain)
    hops = network.hop_count(client, dst_ip)
    analysis.hops_to_site = hops

    analysis.censored_at_ttl_n_minus_1 = _paired_ttl_probe(
        world, client, dst_ip, blocked_domain, hops - 1)
    analysis.censored_at_ttl_n = _paired_ttl_probe(
        world, client, dst_ip, blocked_domain, hops)

    _crafted_request_probe(world, client, dst_ip, blocked_domain, analysis)
    _offset_fudging_probe(world, client, dst_ip, blocked_domain,
                          hops - 1, analysis)
    return analysis


def _paired_ttl_probe(world, client: Host, dst_ip: str, domain: str,
                      ttl: int, attempts: int = 8) -> bool:
    """Did a GET at this TTL draw a censorship response?  Retried to
    defeat wiretap races."""
    for _ in range(attempts):
        flow = CraftedFlow(world, client, dst_ip)
        if not flow.open():
            continue
        observation = flow.probe_and_observe(domain, ttl=ttl,
                                             advance=False)
        flow.close()
        if observation.censored:
            return True
    return False


def _crafted_request_probe(world, client, dst_ip, domain, analysis,
                           attempts: int = 5) -> None:
    """Find a crafted variant the middlebox misses but the origin
    serves — proof responses are not inspected."""
    for label, make_spec in CRAFTED_VARIANTS:
        for _ in range(attempts):
            flow = CraftedFlow(world, client, dst_ip)
            if not flow.open():
                continue
            observation = flow.probe_and_observe(
                domain, spec=make_spec(domain), duration=1.2)
            flow.close()
            if observation.censored:
                break
            if observation.real_content:
                analysis.crafted_variant_bypassing = label
                analysis.crafted_fetched_real_content = True
                return


def _offset_fudging_probe(world, client, dst_ip, domain, penultimate_ttl,
                          analysis, attempts: int = 8) -> None:
    """Where must the blocked name sit to trigger?  All probes run at
    the penultimate TTL so only middleboxes can answer."""
    variants = {
        "host": GetRequestSpec(domain=domain),
        "path": GetRequestSpec(domain="example-allowed.org",
                               path=f"/{domain}/index.html"),
        "header": GetRequestSpec(
            domain="example-allowed.org",
            headers=(("Referer", f"http://{domain}/"),
                     ("Connection", "close"))),
    }
    hits = {}
    for label, spec in variants.items():
        hits[label] = False
        for _ in range(attempts):
            flow = CraftedFlow(world, client, dst_ip)
            if not flow.open():
                continue
            observation = flow.probe_and_observe(
                domain, spec=spec, ttl=penultimate_ttl, duration=0.8)
            flow.close()
            if observation.censored:
                hits[label] = True
                break
    analysis.host_field_triggers = hits["host"]
    analysis.domain_in_path_triggers = hits["path"]
    analysis.domain_in_other_header_triggers = hits["header"]
