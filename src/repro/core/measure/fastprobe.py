"""Express probing: path-walk verdicts without packet simulation.

Full packet simulation costs ~2 ms per fetch; the coverage experiments
of section 4.2.2 need millions of (destination, Host) probes.  The
express layer answers "would this request be censored, and by which
box?" by walking the ECMP path once and applying each middlebox's
trigger discipline directly — the same :class:`TriggerSpec` objects the
packet-level middleboxes use, so there is no second implementation of
matching to drift.

Express probing intentionally assumes a *patient* prober: wiretap
race-losses (miss_rate) are ignored, matching the paper's methodology
of counting a path poisoned when even a single probe elicits
censorship.  Equivalence with the packet engine is covered by property
tests in ``tests/measure/test_fastprobe_equivalence.py``.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...dnssim.message import DNSQuery, DNSResponse
from ...dnssim.resolver import ResolverService
from ...httpsim.message import GetRequestSpec
from ...middlebox.dns_injector import DNSInjectorMiddlebox
from ...netsim.devices import Host, Router
from ...netsim.engine import Network
from ...netsim.errors import RoutingError


@dataclass
class ExpressVerdict:
    """Outcome of one express HTTP probe."""

    censored: bool
    domain: Optional[str] = None
    box: Optional[object] = None
    hop: Optional[int] = None

    @property
    def box_kind(self) -> Optional[str]:
        return getattr(self.box, "kind", None) if self.box else None

    @property
    def box_isp(self) -> Optional[str]:
        return getattr(self.box, "isp", None) if self.box else None

    @property
    def covert(self) -> bool:
        """True when censorship manifests as a bare reset."""
        return getattr(self.box, "mode", None) == "covert"


NOT_CENSORED = ExpressVerdict(censored=False)


#: Per-network memo of :func:`middleboxes_along`:
#: network -> (topology_generation, {(client, dst_ip, src_ip): boxes}).
#: Weakly keyed so discarded worlds release their cache, and stamped
#: with the generation so any topology/middlebox change retires it.
_BOX_CACHE: "weakref.WeakKeyDictionary[Network, Tuple[int, Dict]]" = \
    weakref.WeakKeyDictionary()


def middleboxes_along(network: Network, client: Host, dst_ip: str,
                      client_ip: Optional[str] = None) -> List[tuple]:
    """(hop, box) pairs on the ECMP path, in traversal order.

    Cached per (client, destination, source address) until the
    network's topology generation moves.  Callers must treat the
    returned list as read-only — both express probe flavours only
    iterate it.  Setting ``network.routing_cache_enabled = False``
    bypasses the memo (equivalence tests and benchmarks).
    """
    client_ip = client_ip or client.ip
    if not network.routing_cache_enabled:
        return _walk_middleboxes(network, client, dst_ip, client_ip)
    generation = network.topology_generation
    entry = _BOX_CACHE.get(network)
    if entry is None or entry[0] != generation:
        entry = (generation, {})
        _BOX_CACHE[network] = entry
    key = (client.name, dst_ip, client_ip)
    found = entry[1].get(key)
    if found is None:
        found = _walk_middleboxes(network, client, dst_ip, client_ip)
        entry[1][key] = found
    return found


def _walk_middleboxes(network: Network, client: Host, dst_ip: str,
                      client_ip: str) -> List[tuple]:
    try:
        path = network.path_to(client, dst_ip, src_ip=client_ip)
    except RoutingError:
        return []
    found = []
    for hop, node in enumerate(path[1:], start=1):
        if isinstance(node, Router):
            for box in node.taps:
                found.append((hop, box))
            if node.inline_middlebox is not None:
                found.append((hop, node.inline_middlebox))
    return found


# ---------------------------------------------------------------------------
# Precompiled delivery plans
# ---------------------------------------------------------------------------

#: Per-network memo of compiled delivery plans, generation-stamped like
#: :data:`_BOX_CACHE` and weakly keyed so discarded worlds release it.
#: Keys inside the per-network dict: ``(client, dst_ip, client_ip,
#: dst_port)`` for HTTP plans and ``("dns", client, resolver_ip)`` for
#: DNS plans.
_PLAN_CACHE: "weakref.WeakKeyDictionary[Network, Tuple[int, Dict]]" = \
    weakref.WeakKeyDictionary()

#: DNS-plan sentinel for unroutable resolvers (a miss we also memoize).
_UNROUTABLE = ("unroutable", ())


def plans_enabled(network: Network) -> bool:
    """Express probes compile plans only when both cache layers are on.

    ``routing_cache_enabled = False`` is the verbatim-seed escape hatch
    and must bypass every memo; ``delivery_plans_enabled = False``
    turns off just the compiled plans while keeping PR 4's FIB/path
    caches (useful for isolating a suspected plan bug).
    """
    return network.routing_cache_enabled and network.delivery_plans_enabled


def _plan_slot(network: Network) -> Dict:
    generation = network.topology_generation
    entry = _PLAN_CACHE.get(network)
    if entry is None or entry[0] != generation:
        entry = (generation, {})
        _PLAN_CACHE[network] = entry
    return entry[1]


def _http_plan(network: Network, client: Host, dst_ip: str,
               client_ip: str, dst_port: int) -> tuple:
    """Compiled HTTP probe plan: ``(hop, box, matcher, blocklist)``.

    The per-box port and scope gates run once at compile time
    (:meth:`Middlebox.express_profile`); probing a payload is then one
    bound-method call per surviving box.  Boxes without a profile hook
    or a trigger spec (e.g. the DNS injector) compile to nothing, same
    as the seed loop's ``spec is None`` skip.
    """
    plans = _plan_slot(network)
    key = (client.name, dst_ip, client_ip, dst_port)
    plan = plans.get(key)
    if plan is not None:
        network.express_plan_hits += 1
        return plan
    network.express_plan_builds += 1
    compiled = []
    for hop, box in middleboxes_along(network, client, dst_ip, client_ip):
        profile = getattr(box, "express_profile", None)
        if profile is not None:
            view = profile(client_ip, dst_port)
            if view is not None:
                compiled.append((hop, box, view[0], view[1]))
            continue
        spec = getattr(box, "spec", None)
        if (spec is not None and spec.inspects_port(dst_port)
                and box.in_scope(client_ip)):
            compiled.append((hop, box, spec.matched_domain, spec.blocklist))
    plan = tuple(compiled)
    plans[key] = plan
    return plan


def _dns_plan(network: Network, client: Host, resolver_ip: str) -> tuple:
    """Compiled DNS probe plan: ``(kind, injectors)``.

    ``injectors`` is the path's DNS injector boxes in traversal order.
    The resolver-service lookup and its config checks (open_to_world,
    client_filter) stay per-call — services can be bound and operators
    flip those at runtime, neither of which moves the topology
    generation.
    """
    plans = _plan_slot(network)
    key = ("dns", client.name, resolver_ip)
    plan = plans.get(key)
    if plan is not None:
        network.express_plan_hits += 1
        return plan
    network.express_plan_builds += 1
    try:
        path = network.path_to(client, resolver_ip)
    except RoutingError:
        plan = _UNROUTABLE
    else:
        injectors = tuple(
            node.inline_middlebox
            for node in path[1:-1]
            if isinstance(node, Router)
            and isinstance(node.inline_middlebox, DNSInjectorMiddlebox)
        )
        plan = ("ok", injectors)
    plans[key] = plan
    return plan


def express_http_probe(
    network: Network,
    client: Host,
    dst_ip: str,
    payload: bytes,
    *,
    dst_port: int = 80,
    client_ip: Optional[str] = None,
) -> ExpressVerdict:
    """Would this request payload be censored en route?"""
    client_ip = client_ip or client.ip
    verdict = NOT_CENSORED
    if plans_enabled(network):
        for hop, box, matcher, _blocklist in _http_plan(
                network, client, dst_ip, client_ip, dst_port):
            domain = matcher(payload)
            if domain is not None:
                verdict = ExpressVerdict(censored=True, domain=domain,
                                         box=box, hop=hop)
                break
    else:
        for hop, box in middleboxes_along(network, client, dst_ip, client_ip):
            spec = getattr(box, "spec", None)
            if spec is None or not spec.inspects_port(dst_port):
                continue
            if not box.in_scope(client_ip):
                continue
            domain = spec.matched_domain(payload)
            if domain is not None:
                verdict = ExpressVerdict(censored=True, domain=domain,
                                         box=box, hop=hop)
                break
    trace = network.trace
    if trace is not None and trace.active:
        trace.emit("probe", network.now, client=client.name, dst=dst_ip,
                   censored=verdict.censored, domain=verdict.domain,
                   hop=verdict.hop)
    return verdict


def express_canonical_probe(
    network: Network,
    client: Host,
    dst_ip: str,
    domain: str,
    *,
    client_ip: Optional[str] = None,
    boxes: Optional[List[tuple]] = None,
) -> ExpressVerdict:
    """Express probe for a *stock-browser* request for *domain*.

    A canonical request's Host line matches every trigger discipline,
    so the per-box check reduces to blocklist membership (plus scope) —
    orders of magnitude faster than byte matching when sweeping the
    full corpus.  Pass precomputed ``boxes`` when probing many domains
    down one path.
    """
    client_ip = client_ip or client.ip
    wanted = domain.lower()
    if boxes is None:
        if plans_enabled(network):
            for hop, box, _matcher, blocklist in _http_plan(
                    network, client, dst_ip, client_ip, 80):
                if wanted in blocklist:
                    return ExpressVerdict(censored=True, domain=wanted,
                                          box=box, hop=hop)
            return NOT_CENSORED
        boxes = middleboxes_along(network, client, dst_ip, client_ip)
    for hop, box in boxes:
        spec = getattr(box, "spec", None)
        if spec is None or not spec.inspects_port(80):
            continue
        if not box.in_scope(client_ip):
            continue
        if wanted in spec.blocklist:
            return ExpressVerdict(censored=True, domain=wanted,
                                  box=box, hop=hop)
    return NOT_CENSORED


def canonical_payload(domain: str) -> bytes:
    """The stock-browser request express probes model."""
    return GetRequestSpec(domain=domain).to_bytes()


# ---------------------------------------------------------------------------
# DNS express probing
# ---------------------------------------------------------------------------

@dataclass
class ExpressDNSAnswer:
    """Outcome of one express DNS probe."""

    responded: bool
    ips: tuple = ()
    rcode: Optional[str] = None
    injected: bool = False
    injector: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.responded and self.rcode == "NOERROR" and bool(self.ips)


NO_ANSWER = ExpressDNSAnswer(responded=False)


def resolver_service_at(network: Network, resolver_ip: str
                        ) -> Optional[ResolverService]:
    """The resolver service listening at *resolver_ip*, if any."""
    owner = network.owner_of(resolver_ip)
    if not isinstance(owner, Host):
        return None
    handler = owner.udp_services.get(53)
    if handler is None:
        return None
    service = getattr(handler, "__self__", None)
    if isinstance(service, ResolverService):
        return service
    return None


def express_dns_probe(
    network: Network,
    client: Host,
    resolver_ip: str,
    qname: str,
) -> ExpressDNSAnswer:
    """Would this query get an answer, and what would it say?

    Walks the path for inline DNS injectors first (they answer from
    mid-path), then consults the resolver service itself.
    """
    if plans_enabled(network):
        kind, injectors = _dns_plan(network, client, resolver_ip)
        if kind == "unroutable":
            return NO_ANSWER
        bare = qname[4:] if qname.startswith("www.") else qname
        for box in injectors:
            if qname in box.blocklist or bare in box.blocklist:
                return ExpressDNSAnswer(
                    responded=True,
                    ips=(box.poison_strategy(qname),),
                    rcode="NOERROR", injected=True, injector=box,
                )
        service = resolver_service_at(network, resolver_ip)
    else:
        try:
            path = network.path_to(client, resolver_ip)
        except RoutingError:
            return NO_ANSWER
        for node in path[1:-1]:
            if isinstance(node, Router) and node.inline_middlebox is not None:
                box = node.inline_middlebox
                if isinstance(box, DNSInjectorMiddlebox):
                    bare = qname[4:] if qname.startswith("www.") else qname
                    if qname in box.blocklist or bare in box.blocklist:
                        return ExpressDNSAnswer(
                            responded=True,
                            ips=(box.poison_strategy(qname),),
                            rcode="NOERROR", injected=True, injector=box,
                        )
        service = resolver_service_at(network, resolver_ip)
    if service is None:
        return NO_ANSWER
    config = service.config
    if not config.open_to_world:
        allowed = config.client_filter
        if allowed is None or not allowed(client.ip):
            return NO_ANSWER
    response: DNSResponse = service.answer(DNSQuery(qname=qname), resolver_ip)
    return ExpressDNSAnswer(responded=True, ips=tuple(response.ips),
                            rcode=response.rcode)
