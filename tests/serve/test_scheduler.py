"""FairScheduler: stride fairness, quotas, deterministic rejections."""

import pytest

from repro.serve.scheduler import AdmissionError, FairScheduler
from repro.serve.tenants import parse_tenants


class Job:
    def __init__(self, run_id, slots=1):
        self.run_id = run_id
        self.slots = slots


def _sched(specs, slots=4):
    return FairScheduler(parse_tenants(specs), slots)


def _drain_dispatch(sched):
    order = []
    while True:
        picked = sched.next_job()
        if picked is None:
            return order
        order.append((picked[0], picked[1].run_id))


class TestFairShare:
    def test_weighted_interleave(self):
        """A weight-2 tenant gets twice the dispatch share."""
        sched = _sched(["heavy:2:1:8", "light:1:1:8"], slots=1)
        for i in range(4):
            sched.submit("heavy", Job(f"h{i}"))
            sched.submit("light", Job(f"l{i}"))
        order = []
        for _ in range(6):
            tenant, job = sched.next_job()
            order.append(job.run_id)
            sched.release(tenant, job.slots)
        # stride: heavy advances half as fast, so the pattern settles
        # into two heavy dispatches per light one.
        assert order == ["h0", "l0", "h1", "h2", "l1", "h3"]

    def test_ties_break_by_name(self):
        sched = _sched(["b", "a"], slots=2)
        sched.submit("b", Job("b1"))
        sched.submit("a", Job("a1"))
        assert _drain_dispatch(sched) == [("a", "a1"), ("b", "b1")]

    def test_burst_cannot_starve(self):
        """One tenant queueing a burst still alternates with another."""
        sched = _sched(["spammer:1:1:8", "victim:1:1:8"], slots=1)
        for i in range(5):
            sched.submit("spammer", Job(f"s{i}"))
        sched.submit("victim", Job("v0"))
        tenant, job = sched.next_job()
        assert job.run_id == "s0"
        sched.release(tenant, 1)
        tenant, job = sched.next_job()
        assert job.run_id == "v0", "victim waited behind the burst"

    def test_dispatch_respects_slot_budget(self):
        sched = _sched(["a"], slots=2)
        sched.submit("a", Job("big", slots=2))
        sched.submit("a", Job("small", slots=1))
        assert _drain_dispatch(sched) == [("a", "big")]
        sched.release("a", 2)
        assert _drain_dispatch(sched) == [("a", "small")]

    def test_per_tenant_slot_quota(self):
        sched = _sched(["a:1:1:8", "b"], slots=4)
        sched.submit("a", Job("a1"))
        sched.submit("a", Job("a2"))
        sched.submit("b", Job("b1"))
        # a2 must wait: tenant 'a' may only hold one slot at a time.
        assert _drain_dispatch(sched) == [("a", "a1"), ("b", "b1")]
        sched.release("a", 1)
        assert _drain_dispatch(sched) == [("a", "a2")]


class TestAdmission:
    def test_unknown_tenant(self):
        sched = _sched(["a"])
        with pytest.raises(AdmissionError) as exc:
            sched.submit("nobody", Job("x"))
        assert exc.value.status == 404
        assert exc.value.payload == {
            "error": "unknown-tenant",
            "detail": "tenant 'nobody' is not configured on this "
                      "service",
            "tenant": "nobody",
        }

    def test_queue_full_payload_is_deterministic(self):
        sched = _sched(["a:1:4:2"])
        sched.submit("a", Job("1"))
        sched.submit("a", Job("2"))
        payloads = []
        for _ in range(3):
            with pytest.raises(AdmissionError) as exc:
                sched.submit("a", Job("3"))
            assert exc.value.status == 429
            payloads.append(exc.value.payload)
        assert payloads[0] == payloads[1] == payloads[2] == {
            "error": "queue-full",
            "detail": "tenant 'a' already has 2 queued campaign(s) "
                      "(max 2)",
            "tenant": "a",
            "limit": 2,
        }

    def test_over_quota_slots(self):
        sched = _sched(["a:1:2:4"], slots=8)
        with pytest.raises(AdmissionError) as exc:
            sched.submit("a", Job("x", slots=3))
        assert exc.value.status == 429
        assert exc.value.payload["error"] == "over-quota"
        assert exc.value.payload["limit"] == 2
        assert exc.value.payload["requested"] == 3

    def test_rejection_leaves_no_state(self):
        sched = _sched(["a:1:4:1"])
        sched.submit("a", Job("1"))
        with pytest.raises(AdmissionError):
            sched.submit("a", Job("2"))
        assert sched.queued_total == 1
        assert sched.free_slots == sched.total_slots


class TestIntrospection:
    def test_snapshot_shape(self):
        sched = _sched(["a:2:2:3"], slots=4)
        sched.submit("a", Job("1"))
        snap = sched.snapshot()
        assert snap["total_slots"] == 4
        assert snap["tenants"]["a"] == {
            "weight": 2, "max_slots": 2, "max_queued": 3,
            "queued": 1, "slots_in_use": 0, "dispatched": 0,
        }

    def test_busy_and_capacity(self):
        sched = _sched(["a:1:4:2", "b:1:4:3"])
        assert sched.queue_capacity == 5
        assert not sched.busy
        sched.submit("a", Job("1"))
        assert sched.busy
