"""``repro report`` on damaged run directories.

A crash can land between the journal fsync and any sidecar write, so
a run directory with a missing or torn ``metrics.json`` /
``timings.jsonl`` / ``supervision.jsonl`` must still render — the
deterministic half unchanged, the gap flagged with a "(sidecar
unavailable)" note instead of a traceback.
"""

import json
import os
import shutil

import pytest

from repro.obs.report import (
    ReportError,
    generate_report,
    load_run,
    render_markdown,
    write_report,
)
from repro.runner.campaign import Campaign


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("degraded") / "run"
    report = Campaign(experiments=["tcpip"], scale=0.05, fraction=1.0,
                      run_dir=str(run_dir), workers=2).run()
    assert report.complete
    # supervision.jsonl is written lazily (only on supervision
    # events); plant one so missing/torn damage is distinguishable
    # from a clean run that simply had nothing to report
    with open(run_dir / "supervision.jsonl", "w",
              encoding="utf-8") as fh:
        fh.write('{"kind": "worker-crash", "worker": 0}\n')
    return run_dir


def _damaged_copy(pristine, tmp_path, *, remove=(), tear=()):
    run_dir = tmp_path / "damaged"
    shutil.copytree(pristine, run_dir)
    for name in remove:
        os.remove(run_dir / name)
    for name in tear:
        with open(run_dir / name, "w", encoding="utf-8") as fh:
            fh.write('{"deterministic": {"counters": {"x"')  # torn
    return run_dir


SIDECARS = ("metrics.json", "timings.jsonl", "supervision.jsonl")


class TestDegradedRendering:
    @pytest.mark.parametrize("name",
                             ("metrics.json", "timings.jsonl"))
    def test_missing_sidecar_still_renders(self, pristine, tmp_path,
                                           name):
        run_dir = _damaged_copy(pristine, tmp_path, remove=[name])
        data = generate_report(str(run_dir))
        markdown = render_markdown(data, run_dir="damaged")
        assert f"(sidecar unavailable: {name} missing" in markdown

    def test_missing_supervision_is_a_clean_run(self, pristine,
                                                tmp_path):
        """supervision.jsonl only exists when supervision events
        occurred — absence is normal, not damage."""
        run_dir = _damaged_copy(pristine, tmp_path,
                                remove=["supervision.jsonl"])
        markdown = render_markdown(generate_report(str(run_dir)))
        assert "supervision.jsonl" not in markdown

    @pytest.mark.parametrize("name", SIDECARS)
    def test_torn_sidecar_still_renders(self, pristine, tmp_path,
                                        name):
        run_dir = _damaged_copy(pristine, tmp_path, tear=[name])
        data = generate_report(str(run_dir))
        markdown = render_markdown(data, run_dir="damaged")
        assert f"(sidecar unavailable: {name} torn" in markdown

    def test_all_sidecars_gone_at_once(self, pristine, tmp_path):
        run_dir = _damaged_copy(pristine, tmp_path, remove=SIDECARS)
        data = generate_report(str(run_dir))
        assert data["deterministic"]["unit_counts"]["ok"] == 5
        md_path, json_path = write_report(str(run_dir))
        assert os.path.exists(md_path) and os.path.exists(json_path)

    def test_deterministic_half_unchanged_by_damage(self, pristine,
                                                    tmp_path):
        """Losing wall-half sidecars must not perturb the
        deterministic half (beyond its own metrics note)."""
        intact = generate_report(str(pristine))
        run_dir = _damaged_copy(
            pristine, tmp_path,
            remove=["timings.jsonl", "supervision.jsonl"])
        damaged = generate_report(str(run_dir))
        assert damaged["deterministic"] == intact["deterministic"]
        assert damaged["wall"]["sidecar_notes"] == [
            "(sidecar unavailable: timings.jsonl missing — derived "
            "numbers omitted)",
        ]

    def test_metrics_note_lands_in_deterministic_half(self, pristine,
                                                      tmp_path):
        run_dir = _damaged_copy(pristine, tmp_path,
                                remove=["metrics.json"])
        data = generate_report(str(run_dir))
        assert data["deterministic"]["sidecar_notes"] == [
            "(sidecar unavailable: metrics.json missing — derived "
            "numbers omitted)"]
        assert data["deterministic"]["drops"] == {}

    def test_healthy_run_has_no_notes(self, pristine):
        data = generate_report(str(pristine))
        assert data["deterministic"]["sidecar_notes"] == []
        assert data["wall"]["sidecar_notes"] == []
        markdown = render_markdown(data)
        assert "sidecar unavailable" not in markdown

    def test_missing_journal_still_raises(self, tmp_path):
        with pytest.raises(ReportError):
            load_run(str(tmp_path))

    def test_sidecar_status_exposed_by_load_run(self, pristine,
                                                tmp_path):
        run_dir = _damaged_copy(pristine, tmp_path,
                                remove=["metrics.json"],
                                tear=["timings.jsonl"])
        run = load_run(str(run_dir))
        assert run["sidecars"] == {"metrics": "missing",
                                   "timings": "torn",
                                   "supervision": "ok"}


class TestAtomicReportWrites:
    def test_no_tmp_residue(self, pristine):
        write_report(str(pristine))
        assert not [name for name in os.listdir(pristine)
                    if name.endswith(".tmp")]

    def test_report_json_valid(self, pristine):
        _, json_path = write_report(str(pristine))
        with open(json_path, encoding="utf-8") as fh:
            data = json.load(fh)
        assert set(data) == {"deterministic", "wall"}
