"""Table 1 — OONI precision/recall in five ISPs.

Paper shape asserted: OONI is inaccurate everywhere; the TCP column is
(0, 0) for every ISP; DNS anomalies are only *real* in MTNL; and HTTP
censorship is detected far better in covert-reset Vodafone than in
block-page ISPs.
"""

from repro.experiments import table1_ooni

from .conftest import run_once


def test_table1_ooni(benchmark, world, domains, record_output):
    result = run_once(benchmark, lambda: table1_ooni.run(world, domains))
    record_output("table1_ooni", result.render())

    rows = {row.isp: row for row in result.rows}

    # TCP censorship is never (correctly) reported anywhere (§3.3).
    for row in rows.values():
        assert row.tcp.true_positives == 0

    # Only MTNL has genuine DNS censorship.
    assert rows["mtnl"].dns.true_positives > 0
    for isp in ("airtel", "idea", "vodafone", "jio"):
        assert rows[isp].dns.true_positives == 0
        # ...yet OONI still flags dns anomalies there (CDN confounder).
        assert len(result.runs[isp].flagged("dns")) > 0

    # OONI is imprecise: every ISP's total precision is well below 1.
    for row in rows.values():
        if row.total.detected:
            assert row.total.precision < 0.9

    # MTNL shows both DNS and HTTP censorship (own resolvers + transit
    # collateral), the paper's distinctive MTNL row.
    assert rows["mtnl"].http.actual > 0
    assert rows["mtnl"].dns.actual > 0
