"""Coverage and consistency — the paper's two infrastructure metrics.

Section 4.1 (DNS) and 4.2.2 (HTTP) define:

* **coverage** — the fraction of units (resolvers / router-level paths)
  that censor at all;
* **consistency** — for every URL blocked by at least one censoring
  unit, the fraction of censoring units blocking it; consistency is the
  average of those fractions.

The same arithmetic serves both mechanisms, so it lives here once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Set


def coverage(n_censoring: int, n_total: int) -> float:
    """Fraction of units that censor."""
    if n_total <= 0:
        return 0.0
    return n_censoring / n_total


def per_site_blocking_fractions(
    per_unit_blocked: Mapping[object, Set[str]],
) -> Dict[str, float]:
    """For every blocked site, the fraction of censoring units blocking it.

    Only units that block *something* count as censoring units (poisoned
    resolvers / poisoned paths), per the paper's definition.
    """
    censoring_units = {unit: blocked
                       for unit, blocked in per_unit_blocked.items()
                       if blocked}
    if not censoring_units:
        return {}
    union: Set[str] = set()
    for blocked in censoring_units.values():
        union |= blocked
    fractions: Dict[str, float] = {}
    total = len(censoring_units)
    for site in union:
        blocking = sum(1 for blocked in censoring_units.values()
                       if site in blocked)
        fractions[site] = blocking / total
    return fractions


def consistency(per_unit_blocked: Mapping[object, Set[str]]) -> float:
    """Average per-site blocking fraction (the Figure 2/5 averages)."""
    fractions = per_site_blocking_fractions(per_unit_blocked)
    if not fractions:
        return 0.0
    return sum(fractions.values()) / len(fractions)


@dataclass
class PrecisionRecall:
    """A (P, R) cell of Table 1."""

    true_positives: int
    detected: int
    actual: int

    @property
    def precision(self) -> float:
        if self.detected == 0:
            return 0.0
        return self.true_positives / self.detected

    @property
    def recall(self) -> float:
        if self.actual == 0:
            return 0.0
        return self.true_positives / self.actual

    def as_tuple(self) -> tuple:
        return (round(self.precision, 2), round(self.recall, 2))


def precision_recall(detected: Iterable[str],
                     actual: Iterable[str]) -> PrecisionRecall:
    """P = |D∩A|/|D|, R = |D∩A|/|A| — exactly the paper's definitions."""
    detected_set = set(detected)
    actual_set = set(actual)
    return PrecisionRecall(
        true_positives=len(detected_set & actual_set),
        detected=len(detected_set),
        actual=len(actual_set),
    )


def blocking_series(per_unit_blocked: Mapping[object, Set[str]],
                    site_ids: Mapping[str, int]) -> List[tuple]:
    """(site_id, percent-of-units-blocking) pairs — the Figure 2/5 dots."""
    fractions = per_site_blocking_fractions(per_unit_blocked)
    series = [(site_ids.get(domain, -1), fraction * 100.0)
              for domain, fraction in fractions.items()]
    series.sort()
    return series
