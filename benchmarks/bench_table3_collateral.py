"""Table 3 — collateral damage within Indian ISPs.

Paper shape asserted: every stub suffers censorship caused purely by
its transit neighbours; NKN's damage comes overwhelmingly from
Vodafone, Sify's / MTNL's / BSNL's from TATA, Siti's from Airtel
alone.
"""

from repro.experiments import table3_collateral

from .conftest import run_once


def test_table3_collateral(benchmark, world, domains, record_output):
    result = run_once(benchmark,
                      lambda: table3_collateral.run(world, domains))
    record_output("table3_collateral", result.render())

    # NKN is mostly hurt by Vodafone.
    assert result.dominant_neighbour("nkn") == "vodafone"
    nkn = result.counts("nkn")
    assert nkn.get("vodafone", 0) > nkn.get("tata", 0)

    # Sify, MTNL and BSNL are mostly hurt by TATA.
    for stub in ("sify", "mtnl", "bsnl"):
        assert result.dominant_neighbour(stub) == "tata", stub
        counts = result.counts(stub)
        assert counts.get("tata", 0) > counts.get("airtel", 0)

    # Siti's damage comes from Airtel alone.
    assert set(result.counts("siti")) == {"airtel"}
    assert result.counts("siti")["airtel"] > 0

    # No stub ever censors with its own infrastructure.
    for stub, report in result.reports.items():
        assert stub not in report.by_neighbour
