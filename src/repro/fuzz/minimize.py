"""Shrink failing fuzz inputs to locally-minimal reproducers.

Classic ddmin over the input's natural granularity — bytes for HTTP
streams, segments (then segment payloads) for TCP schedules, fields
for DNS entries.  The predicate is "does this smaller input still
violate the same oracle"; minimization is deterministic (no RNG) and
bounded by a predicate-call budget so a pathological finding cannot
stall the campaign.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

#: Predicate-call ceiling per finding: minimization is best-effort.
DEFAULT_BUDGET = 400


class _Budget:
    def __init__(self, limit: int) -> None:
        self.remaining = limit

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _ddmin(chunks: List, rebuild: Callable, predicate: Callable,
           budget: _Budget) -> List:
    """Delta-debugging reduction of *chunks*; *rebuild* makes an input
    from a chunk list, *predicate* says whether it still fails."""
    granularity = 2
    while len(chunks) >= 2:
        size = max(1, len(chunks) // granularity)
        reduced = False
        start = 0
        while start < len(chunks):
            candidate = chunks[:start] + chunks[start + size:]
            if candidate and budget.spend() and predicate(rebuild(candidate)):
                chunks = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += size
            if budget.remaining <= 0:
                return chunks
        if not reduced:
            if granularity >= len(chunks):
                break
            granularity = min(len(chunks), granularity * 2)
    return chunks


def minimize_bytes(data: bytes, predicate: Callable[[bytes], bool],
                   budget_limit: int = DEFAULT_BUDGET) -> bytes:
    """Smallest byte string (by ddmin) still satisfying *predicate*."""
    if not predicate(data):
        return data
    budget = _Budget(budget_limit)
    chunks = [bytes([b]) for b in data]
    chunks = _ddmin(chunks, b"".join, predicate, budget)
    return b"".join(chunks)


Schedule = List[Tuple[int, bytes]]


def minimize_schedule(schedule: Schedule,
                      predicate: Callable[[Schedule], bool],
                      budget_limit: int = DEFAULT_BUDGET) -> Schedule:
    """Drop segments, then shrink each surviving payload."""
    if not predicate(schedule):
        return schedule
    budget = _Budget(budget_limit)
    schedule = _ddmin(list(schedule), list, predicate, budget)
    for index in range(len(schedule)):
        offset, data = schedule[index]
        if len(data) < 2 or budget.remaining <= 0:
            continue

        def keeps_failing(smaller: bytes, index=index, offset=offset) -> bool:
            trial = list(schedule)
            trial[index] = (offset, smaller)
            return predicate(trial)

        chunks = [bytes([b]) for b in data]
        chunks = _ddmin(chunks, b"".join, keeps_failing, budget)
        schedule[index] = (offset, b"".join(chunks))
    return schedule


def minimize_dns(entry: dict, predicate: Callable[[dict], bool],
                 budget_limit: int = DEFAULT_BUDGET) -> dict:
    """Simplify a DNS entry: drop the explicit qid, shorten the qname."""
    if not predicate(entry):
        return entry
    budget = _Budget(budget_limit)
    if entry.get("qid") is not None and budget.spend():
        simpler = dict(entry, qid=None)
        if predicate(simpler):
            entry = simpler
    qname = entry.get("qname", "")
    if len(qname) >= 2:

        def keeps_failing(smaller: bytes) -> bool:
            return predicate(dict(entry,
                                  qname=smaller.decode("utf-8",
                                                       errors="replace")))

        chunks = [bytes([b]) for b in qname.encode("utf-8")]
        chunks = _ddmin(chunks, b"".join, keeps_failing, budget)
        entry = dict(entry, qname=b"".join(chunks).decode(
            "utf-8", errors="replace"))
    return entry


def minimize_session(entry: dict, predicate: Callable[[dict], bool],
                     budget_limit: int = DEFAULT_BUDGET) -> dict:
    """Drop ops, then try switching off the box features one by one."""
    if not predicate(entry):
        return entry
    budget = _Budget(budget_limit)
    ops = _ddmin(list(entry["ops"]),
                 lambda chunks: dict(entry, ops=list(chunks)),
                 predicate, budget)
    entry = dict(entry, ops=list(ops))
    for simpler in (dict(entry, residual=0.0),
                    dict(entry, eviction="none"),
                    dict(entry, overload="fail-open")):
        if simpler != entry and budget.spend() and predicate(simpler):
            entry = simpler
    return entry


def minimize(target: str, entry, predicate,
             budget_limit: int = DEFAULT_BUDGET):
    """Dispatch by fuzz target."""
    if target in ("http", "diff"):
        return minimize_bytes(entry, predicate, budget_limit)
    if target == "tcp":
        return minimize_schedule(entry, predicate, budget_limit)
    if target == "dns":
        return minimize_dns(entry, predicate, budget_limit)
    if target == "session":
        return minimize_session(entry, predicate, budget_limit)
    raise ValueError(f"unknown fuzz target {target!r}")
