"""Chaos tests: the seeded fault-injection subsystem.

Covers the plan/injector layer (determinism, per-scope RNG isolation),
the engine wiring (loss, duplication, jitter, flaps, drop_stats) and
the hardened consumers closest to the wire (TCP retransmission, DNS
retries, middlebox blindness).
"""

import pytest

from repro.dnssim import GlobalDNS, ResolverConfig, ResolverService, dns_lookup
from repro.httpsim import OriginServer, fetch_url, make_response
from repro.middlebox import (
    TriggerSpec,
    WiretapMiddlebox,
    looks_like_block_page,
    profile_for,
)
from repro.netsim import (
    DEFAULT_HARDENING,
    NO_HARDENING,
    FaultInjector,
    FaultPlan,
    HardeningPolicy,
    LinkFaults,
    MiddleboxFaults,
    Network,
    ResolverFaults,
    make_udp_packet,
)
from repro.netsim.faults import link_key

BODY = b"<html><head><title>ok</title></head><body>content</body></html>"


def build_chain(n_routers=2):
    """client -- r1 -- ... -- rn -- server, with an origin for web.test."""
    net = Network()
    client = net.add_host("client", "10.0.0.1")
    server = net.add_host("server", "10.9.0.1")
    prev = "client"
    for i in range(1, n_routers + 1):
        net.add_router(f"r{i}", f"10.1.0.{i}")
        net.link(prev, f"r{i}")
        prev = f"r{i}"
    net.link(prev, "server")
    origin = OriginServer()
    origin.add_domain("web.test", lambda req, ip: make_response(200, BODY))
    origin.add_domain("blocked.test",
                      lambda req, ip: make_response(200, BODY))
    origin.install(server)
    return net, client, server


class TestPlanBasics:
    def test_link_key_is_unordered(self):
        assert link_key("b", "a") == link_key("a", "b") == "a|b"

    def test_loss_must_be_probability(self):
        with pytest.raises(ValueError):
            LinkFaults(loss=1.5)

    def test_flap_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            LinkFaults(flaps=((2.0, 1.0),))

    def test_resolver_rates_validated(self):
        with pytest.raises(ValueError):
            ResolverFaults(drop_rate=-0.1)

    def test_middlebox_rate_validated(self):
        with pytest.raises(ValueError):
            MiddleboxFaults(blind_rate=2.0)

    def test_hardening_attempts_validated(self):
        with pytest.raises(ValueError):
            HardeningPolicy(dns_attempts=0)

    def test_backoff_is_exponential(self):
        policy = HardeningPolicy(fetch_backoff_base=0.5,
                                 fetch_backoff_factor=2.0)
        assert policy.fetch_backoff(1) == 0.5
        assert policy.fetch_backoff(3) == 2.0

    def test_empty_plan_is_inactive(self):
        assert not FaultPlan().active

    def test_uniform_loss_is_active(self):
        assert FaultPlan.uniform_loss(0.05).active

    def test_link_override(self):
        plan = FaultPlan().with_link("a", "b", LinkFaults(loss=0.5))
        assert plan.link_faults("b", "a").loss == 0.5
        assert plan.link_faults("a", "c").loss == 0.0
        assert plan.active

    def test_resolver_override(self):
        plan = FaultPlan().with_resolver("10.0.0.53",
                                         ResolverFaults(drop_rate=1.0))
        assert plan.resolver_faults("10.0.0.53").drop_rate == 1.0
        assert plan.resolver_faults("10.0.0.54").drop_rate == 0.0


class TestDeterminism:
    def decisions(self, seed, link=("a", "b"), n=200):
        injector = FaultInjector(FaultPlan.uniform_loss(0.3, seed=seed))
        return [injector.on_link(*link, now=0.0).dropped for _ in range(n)]

    def test_same_seed_same_schedule(self):
        assert self.decisions(7) == self.decisions(7)

    def test_different_seed_different_schedule(self):
        assert self.decisions(7) != self.decisions(8)

    def test_streams_are_per_link(self):
        """Consulting one link never perturbs another's schedule."""
        alone = self.decisions(7, link=("a", "b"))
        injector = FaultInjector(FaultPlan.uniform_loss(0.3, seed=7))
        interleaved = []
        for _ in range(200):
            interleaved.append(injector.on_link("a", "b", 0.0).dropped)
            injector.on_link("c", "d", 0.0)  # other-link traffic
        assert interleaved == alone

    def test_stats_count_drops(self):
        injector = FaultInjector(FaultPlan.uniform_loss(1.0, seed=1))
        for _ in range(5):
            injector.on_link("a", "b", 0.0)
        assert injector.stats["link-loss"] == 5
        assert list(injector.stats_lines()) == ["link-loss: 5"]


class TestEngineWiring:
    def test_total_loss_drops_everything(self):
        net, client, server = build_chain()
        net.install_faults(FaultPlan.uniform_loss(1.0, seed=1))
        client.send_packet(make_udp_packet(client.ip, server.ip, 1, 2, b"x"))
        net.run_until_idle()
        assert not server.capture.filter(direction="rx")
        assert net.drop_stats()["fault-loss"] == 1
        # Uncollapsed stats retain the per-link suffix.
        raw = net.drop_stats(collapse=False)
        assert any(key.startswith("fault-loss:client->") for key in raw)

    def test_zero_loss_changes_nothing(self):
        net, client, server = build_chain()
        net.install_faults(FaultPlan.uniform_loss(0.0, seed=1))
        client.send_packet(make_udp_packet(client.ip, server.ip, 1, 2, b"x"))
        net.run_until_idle()
        assert server.capture.filter(direction="rx")
        assert not net.drop_stats()

    def test_duplication_delivers_two_copies(self):
        net, client, server = build_chain(n_routers=1)
        net.install_faults(FaultPlan(
            seed=1, default_link=LinkFaults(duplicate=1.0)))
        client.send_packet(make_udp_packet(client.ip, server.ip, 1, 2, b"x"))
        net.run_until_idle()
        rx = [e for e in server.capture.filter(direction="rx")
              if e.packet.is_udp]
        # Each of the two hops doubles the packet: 4 copies arrive.
        assert len(rx) == 4

    def test_jitter_delays_delivery(self):
        def arrival(plan):
            net, client, server = build_chain(n_routers=1)
            if plan is not None:
                net.install_faults(plan)
            client.send_packet(
                make_udp_packet(client.ip, server.ip, 1, 2, b"x"))
            net.run_until_idle()
            rx = [e for e in server.capture.filter(direction="rx")
                  if e.packet.is_udp]
            return rx[0].time

        baseline = arrival(None)
        jittered = arrival(FaultPlan(
            seed=3, default_link=LinkFaults(jitter=0.2)))
        assert jittered > baseline

    def test_flap_window_blackholes_then_recovers(self):
        net, client, server = build_chain(n_routers=1)
        net.install_faults(FaultPlan(
            seed=1, default_link=LinkFaults(flaps=((0.0, 1.0),))))
        client.send_packet(make_udp_packet(client.ip, server.ip, 1, 2, b"a"))
        net.run_until_idle()
        assert net.drop_stats()["fault-flap"] >= 1
        assert not server.capture.filter(direction="rx")
        net.run(until=1.5)  # outage over
        client.send_packet(make_udp_packet(client.ip, server.ip, 1, 2, b"b"))
        net.run_until_idle()
        assert server.capture.filter(direction="rx")

    def test_faults_default_off(self):
        net, _, _ = build_chain()
        assert net.faults is None
        assert net.hardening is NO_HARDENING

    def test_install_switches_hardening(self):
        net, _, _ = build_chain()
        net.install_faults(FaultPlan.uniform_loss(0.05))
        assert net.hardening is DEFAULT_HARDENING
        net2, _, _ = build_chain()
        net2.install_faults(FaultPlan.uniform_loss(0.05),
                            hardening=NO_HARDENING)
        assert net2.hardening is NO_HARDENING


class TestTCPRescue:
    def test_fetch_survives_heavy_loss(self):
        net, client, server = build_chain(n_routers=2)
        net.install_faults(FaultPlan.uniform_loss(0.25, seed=11))
        result = fetch_url(net, client, server.ip, "web.test")
        assert result.ok
        assert BODY in result.raw_stream
        assert net.faults.stats["link-loss"] > 0

    def test_unhardened_fetch_fails_where_hardened_succeeds(self):
        """The regression the hardening exists to fix: the same fault
        schedule that a retransmitting, retrying client shrugs off kills
        the seed repo's single-shot client."""
        plan = FaultPlan.uniform_loss(0.25, seed=11)

        net, client, server = build_chain(n_routers=2)
        net.install_faults(plan, hardening=NO_HARDENING)
        naked = fetch_url(net, client, server.ip, "web.test")

        net2, client2, server2 = build_chain(n_routers=2)
        net2.install_faults(plan)
        hardened = fetch_url(net2, client2, server2.ip, "web.test")

        assert hardened.ok
        assert not naked.ok

    def test_same_seed_identical_outcome(self):
        outcomes = []
        for _ in range(2):
            net, client, server = build_chain(n_routers=2)
            net.install_faults(FaultPlan.uniform_loss(0.25, seed=11))
            result = fetch_url(net, client, server.ip, "web.test")
            outcomes.append((result.ok, result.attempts, bytes(
                result.raw_stream), net.faults.stats["link-loss"]))
        assert outcomes[0] == outcomes[1]


class TestResolverFaultsLive:
    def make_dns_world(self):
        net = Network()
        client = net.add_host("client", "10.0.0.1")
        resolver_host = net.add_host("resolver", "10.5.0.53")
        net.add_router("r1", "10.1.0.1")
        net.link("client", "r1")
        net.link("r1", "resolver")
        global_dns = GlobalDNS()
        global_dns.add_simple("good.example", ["93.184.216.34"])
        service = ResolverService(global_dns, ResolverConfig())
        service.install(resolver_host)
        return net, client, resolver_host, service

    def test_dropping_resolver_exhausts_retries(self):
        net, client, resolver_host, service = self.make_dns_world()
        net.install_faults(FaultPlan(
            seed=1, resolver_default=ResolverFaults(drop_rate=1.0)))
        result = dns_lookup(net, client, resolver_host.ip, "good.example",
                            timeout=0.5)
        assert not result.responded
        assert result.outcome == "timeout"
        assert result.attempts == DEFAULT_HARDENING.dns_attempts
        assert service.dropped_queries == DEFAULT_HARDENING.dns_attempts
        assert net.faults.stats["resolver-drop"] >= result.attempts

    def test_flaky_resolver_rescued_by_retry(self):
        net, client, resolver_host, service = self.make_dns_world()
        net.install_faults(FaultPlan(
            seed=2, resolver_default=ResolverFaults(drop_rate=0.5)))
        result = dns_lookup(net, client, resolver_host.ip, "good.example",
                            timeout=0.5)
        assert result.ok
        assert result.ips == ["93.184.216.34"]

    def test_slow_resolver_still_answers(self):
        net, client, resolver_host, service = self.make_dns_world()
        net.install_faults(FaultPlan(
            seed=1,
            resolver_default=ResolverFaults(slow_rate=1.0, slow_delay=0.3)))
        result = dns_lookup(net, client, resolver_host.ip, "good.example")
        assert result.ok
        assert service.slow_answers >= 1


class TestMiddleboxBlindness:
    BLOCKED = "blocked.test"

    def make_censored_chain(self):
        net, client, server = build_chain(n_routers=2)
        box = WiretapMiddlebox(
            "wm-test", "airtel",
            TriggerSpec(blocklist=frozenset({self.BLOCKED})),
            profile_for("airtel"), miss_rate=0.0, seed=7)
        net.nodes["r1"].attach_tap(box)
        return net, client, server, box

    def test_blind_box_lets_blocked_site_through(self):
        net, client, server, box = self.make_censored_chain()
        net.install_faults(FaultPlan(
            seed=1, middlebox=MiddleboxFaults(blind_rate=1.0)))
        result = fetch_url(net, client, server.ip, self.BLOCKED)
        assert result.ok
        assert not looks_like_block_page(result.first_response.body)
        assert box.stats.fault_blind > 0

    def test_sighted_box_still_censors_under_faults(self):
        net, client, server, box = self.make_censored_chain()
        net.install_faults(FaultPlan(
            seed=1, middlebox=MiddleboxFaults(blind_rate=0.0)))
        result = fetch_url(net, client, server.ip, self.BLOCKED)
        assert result.ok
        assert looks_like_block_page(result.first_response.body)
        assert box.stats.fault_blind == 0
