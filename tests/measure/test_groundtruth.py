"""Tor circuit and manual-verification oracle."""

from repro.core.groundtruth import (
    TorCircuit,
    manually_verify,
    same_site_content,
    stable_core,
)
from repro.core.vantage import VantagePoint
from repro.websites.content import page_response


class TestTorCircuit:
    def test_tor_fetch_is_uncensored(self, small_world):
        world = small_world
        tor = TorCircuit(world)
        # Pick a site censored by Idea (high coverage) — Tor must still
        # retrieve the real content.
        domain = sorted(world.blocklists.http["idea"])[0]
        result = tor.fetch(domain)
        assert result is not None and result.ok
        body = result.first_response.body
        assert b"blocked" not in body.lower() or b"Blocked" not in body

    def test_tor_resolution_cached_and_regional(self, small_world):
        world = small_world
        tor = TorCircuit(world)
        cdn_site = next(s for s in world.corpus if s.hosting == "cdn")
        first = tor.resolve(cdn_site.domain)
        again = tor.resolve(cdn_site.domain)
        assert first is again  # cache hit
        # Tor exits in the us region; answers must be the us addresses.
        assert first.ips == [world.hosting.ip_for(cdn_site.domain, "us")]

    def test_tcp_connect_success_and_failure(self, small_world):
        world = small_world
        tor = TorCircuit(world)
        assert tor.tcp_connect(world.alexa[0].ip)
        assert not tor.tcp_connect("203.0.113.99", timeout=1.0)


class TestStableCore:
    def test_strips_live_feed(self):
        a = b"<html><title>T1</title><body>x" \
            b'<div class="live-feed" data-a="1">AAA</div></body></html>'
        b_ = b"<html><title>T2</title><body>x" \
             b'<div class="live-feed" data-a="2">BBB</div></body></html>'
        assert stable_core(a) == stable_core(b_)

    def test_dynamic_site_recognised_as_same(self, small_world):
        site = next(s for s in small_world.corpus if s.dynamic)
        a = page_response(site, region="in", nonce=1).body
        b = page_response(site, region="us", nonce=9).body
        assert a != b
        assert same_site_content(a, b)

    def test_different_sites_not_same(self, small_world):
        sites = [s for s in small_world.corpus if s.hosting == "normal"]
        a = page_response(sites[0]).body
        b = page_response(sites[1]).body
        assert not same_site_content(a, b)


class TestManualOracle:
    def test_clean_site_not_censored(self, small_world):
        world = small_world
        blocked_any = world.blocklists.all_blocked_domains()
        site = next(s for s in world.corpus
                    if s.domain not in blocked_any and s.hosting == "normal")
        verdict = manually_verify(world, world.client_of("airtel"),
                                  site.domain)
        assert not verdict.censored

    def test_idea_blocked_site_detected_http(self, small_world):
        world = small_world
        client = world.client_of("idea")
        # Find a site actually censored on this client's paths.
        from repro.core.measure import (canonical_payload,
                                        express_http_probe)
        domain = None
        for candidate in sorted(world.blocklists.http["idea"]):
            ip = world.hosting.ip_for(candidate, "in")
            verdict = express_http_probe(world.network, client, ip,
                                         canonical_payload(candidate))
            if verdict.censored:
                domain = candidate
                break
        assert domain is not None
        verdict = manually_verify(world, client, domain)
        assert verdict.censored
        assert verdict.mechanism == "http"

    def test_mtnl_dns_poisoning_detected(self, small_world):
        world = small_world
        deployment = world.isp("mtnl")
        client = deployment.client
        resolver_ip = deployment.default_resolver_ip
        from repro.core.measure import express_dns_probe, resolver_service_at
        service = resolver_service_at(world.network, resolver_ip)
        blocked = sorted(service.config.blocklist)
        assert blocked, "default MTNL resolver should be poisoned"
        verdict = manually_verify(world, client, blocked[0],
                                  resolver_ip=resolver_ip)
        assert verdict.censored
        assert verdict.mechanism == "dns"

    def test_dead_site_unblocked_is_not_censored(self, small_world):
        world = small_world
        blocked_any = world.blocklists.all_blocked_domains()
        dead = next((s for s in world.corpus
                     if s.is_dead and s.domain not in blocked_any), None)
        if dead is None:
            import pytest
            pytest.skip("no unblocked dead site in this corpus sample")
        verdict = manually_verify(world, world.client_of("airtel"),
                                  dead.domain)
        assert not verdict.censored

    def test_cdn_site_not_flagged_as_dns_censored(self, small_world):
        """The oracle must not mistake CDN regional resolution for
        poisoning — the exact error OONI makes."""
        world = small_world
        blocked_any = world.blocklists.all_blocked_domains()
        cdn = next(s for s in world.corpus
                   if s.hosting == "cdn" and s.domain not in blocked_any)
        verdict = manually_verify(world, world.client_of("mtnl"),
                                  cdn.domain)
        assert not verdict.dns_censored


class TestVantagePoint:
    def test_inside_vantage_uses_isp_resolver(self, small_world):
        vantage = VantagePoint.inside(small_world, "airtel")
        assert vantage.default_resolver_ip == \
            small_world.isp("airtel").honest_resolver_ip

    def test_external_vantage(self, small_world):
        vantage = VantagePoint.external(small_world, 2)
        assert vantage.host is small_world.vantage_points[2]
        assert vantage.region == "us"

    def test_fetch_domain_resolves_and_fetches(self, small_world):
        world = small_world
        vantage = VantagePoint.inside(world, "nkn")
        domain = world.alexa[0].domain
        result = vantage.fetch_domain(domain)
        assert result is not None and result.ok
        assert result.first_response.status == 200

    def test_fetch_domain_returns_none_for_unresolvable(self, small_world):
        vantage = VantagePoint.inside(small_world, "nkn")
        assert vantage.fetch_domain("no-such-name.invalid") is None
