"""Replay the committed fuzz reproducers in ``tests/fixtures/fuzz``.

Every fixture is a minimized input that once crashed a parser, escaped
classification, or witnesses a documented evasion class.  Replaying
them asserts the whole corpus stays green: no violations, and any
expected classification still fires.
"""

import glob
import os

import pytest

from repro.fuzz import load_fixture, replay_fixture

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                           "fixtures", "fuzz")
FIXTURES = sorted(glob.glob(os.path.join(FIXTURE_DIR, "*.json")))


def test_fixture_corpus_is_committed():
    assert len(FIXTURES) >= 10, "the regression corpus went missing"


@pytest.mark.parametrize("path", FIXTURES,
                         ids=[os.path.basename(p) for p in FIXTURES])
def test_fixture_replays_clean(path):
    fixture = load_fixture(path)
    result = replay_fixture(fixture)
    assert result.violations == [], (
        f"{os.path.basename(path)} regressed: {result.violations}")
    expected = fixture.get("classification")
    if expected and expected in ("keyword-case", "keyword-padding",
                                 "value-exotic-whitespace",
                                 "last-host-decoy", "duplicate-host-400",
                                 "segment-boundary-host",
                                 "resolver-poisoning"):
        assert expected in result.classes, (
            f"{os.path.basename(path)}: expected class {expected!r} "
            f"no longer reported ({result.classes})")


def test_fixture_dir_usable_as_corpus(tmp_path):
    # A triaged reproducer doubles as a corpus seed: `repro fuzz
    # --corpus tests/fixtures/fuzz` must fuzz *around* past findings.
    from repro.fuzz import FuzzEngine

    report = FuzzEngine(seed=4, iterations=30, targets=["diff"],
                        run_dir=str(tmp_path),
                        corpus_dir=FIXTURE_DIR).run()
    assert report.findings == 0
