"""Serial vs ``--workers 4``: observability sidecars must byte-match.

Same seed + same trace subscription ⇒ byte-identical ``trace.jsonl``
and identical deterministic metrics, no matter how many workers ran
the units; ``repro report`` output differs only in its wall half.
"""

import copy
import json
import os

import pytest

from repro.obs.report import generate_report, render_markdown, write_report
from repro.runner.campaign import Campaign

EXPERIMENTS = ["tcpip", "table3"]
SCALE = 0.05


def _run(run_dir, workers):
    report = Campaign(experiments=EXPERIMENTS, scale=SCALE, fraction=1.0,
                      run_dir=str(run_dir), workers=workers,
                      trace=True).run()
    assert report.complete
    return run_dir


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    base = tmp_path_factory.mktemp("obs-determinism")
    serial = _run(base / "serial", workers=1)
    parallel = _run(base / "parallel", workers=4)
    return serial, parallel


def _read(run_dir, name):
    with open(os.path.join(run_dir, name), "rb") as fh:
        return fh.read()


class TestTraceDeterminism:
    def test_trace_jsonl_byte_identical(self, runs):
        serial, parallel = runs
        serial_trace = _read(serial, "trace.jsonl")
        assert serial_trace  # tracing actually recorded something
        assert serial_trace == _read(parallel, "trace.jsonl")

    def test_journal_untouched_by_tracing(self, runs, tmp_path):
        """A traced run's journal matches an untraced run's, byte for
        byte — the sidecar never perturbs the durable record."""
        serial, _ = runs
        untraced = tmp_path / "untraced"
        report = Campaign(experiments=EXPERIMENTS, scale=SCALE,
                          fraction=1.0, run_dir=str(untraced)).run()
        assert report.complete
        assert _read(serial, "journal.jsonl") == \
            _read(untraced, "journal.jsonl")
        assert _read(serial, "tables.txt") == _read(untraced, "tables.txt")
        assert not os.path.exists(untraced / "trace.jsonl")

    def test_trace_events_carry_unit_correlation(self, runs):
        serial, _ = runs
        lines = _read(serial, "trace.jsonl").decode().splitlines()
        corrs = {json.loads(line).get("corr") for line in lines}
        assert "tcpip/mtnl" in corrs
        assert all(corr for corr in corrs), "uncorrelated campaign event"


class TestMetricsDeterminism:
    def test_deterministic_section_identical(self, runs):
        serial, parallel = runs
        serial_metrics = json.loads(_read(serial, "metrics.json"))
        parallel_metrics = json.loads(_read(parallel, "metrics.json"))
        assert serial_metrics["deterministic"] == \
            parallel_metrics["deterministic"]
        assert serial_metrics["deterministic"]["counters"][
            "campaign_units_total{status=ok}"] > 0

    def test_hot_path_cache_metrics_present(self, runs):
        serial, _ = runs
        counters = json.loads(_read(serial, "metrics.json"))[
            "deterministic"]["counters"]
        assert "netsim_fib_hits_total{experiment=tcpip}" in counters
        assert "netsim_events_total{experiment=tcpip}" in counters


class TestReport:
    def _stripped(self, run_dir):
        data = copy.deepcopy(generate_report(str(run_dir)))
        data.pop("wall")
        return data

    def test_report_identical_modulo_wall(self, runs):
        serial, parallel = runs
        assert self._stripped(serial) == self._stripped(parallel)

    def test_markdown_sections_rendered(self, runs):
        serial, _ = runs
        md_path, json_path = write_report(str(serial))
        text = open(md_path, encoding="utf-8").read()
        for heading in ("## Run", "## Units", "## Fault injection",
                        "## Trace", "## Wall (nondeterministic)"):
            assert heading in text
        data = json.load(open(json_path, encoding="utf-8"))
        assert data["deterministic"]["unit_counts"]["ok"] > 0
        assert data["deterministic"]["trace"]["events"] > 0

    def test_markdown_deterministic_above_wall_section(self, runs):
        """Everything before the wall heading byte-matches across
        worker counts, so diffing two reports localizes to wall."""
        serial, parallel = runs
        def head(run_dir):
            text = render_markdown(generate_report(str(run_dir)))
            return text.split("## Wall (nondeterministic)")[0]
        assert head(serial) == head(parallel)

    def test_report_errors_on_non_run_dir(self, tmp_path):
        from repro.obs.report import ReportError

        with pytest.raises(ReportError, match="journal.jsonl"):
            generate_report(str(tmp_path))
