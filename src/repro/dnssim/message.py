"""DNS message model.

Queries and responses travel as structured UDP payloads; a 16-bit query
id ties them together exactly as in real DNS (the tracer matches
injected vs. authoritative answers by qid).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

DNS_PORT = 53


class QidAllocator:
    """A deterministic, resettable 16-bit query-id sequence.

    The seed repo used a bare module-level ``itertools.count``, which
    leaked state across worlds: the qids a test saw depended on every
    lookup any earlier test had performed.  Worlds (and fuzz runs) now
    reset the allocator so a given seed always produces the same qid
    stream.
    """

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def next(self) -> int:
        """The next query id (16-bit wrap)."""
        return next(self._counter) & 0xFFFF

    def reset(self, start: int = 1) -> None:
        """Restart the sequence at *start*."""
        self._counter = itertools.count(start)


#: Process-wide default allocator (what :func:`next_qid` draws from).
_default_qids = QidAllocator()


def next_qid() -> int:
    """A fresh query id (16-bit wrap) from the default allocator."""
    return _default_qids.next()


def reset_qids(start: int = 1) -> None:
    """Reset the default qid sequence (fresh worlds, deterministic
    fuzz runs, test isolation)."""
    _default_qids.reset(start)


@dataclass(frozen=True)
class DNSQuery:
    """An A-record question for *qname*."""

    qname: str
    qid: int = field(default_factory=next_qid)
    qtype: str = "A"


@dataclass(frozen=True)
class DNSResponse:
    """An answer: resolved addresses (empty means NXDOMAIN/SERVFAIL)."""

    qname: str
    qid: int
    ips: tuple = ()
    rcode: str = "NOERROR"
    #: Stamped by the resolver that generated the answer; lets tests
    #: distinguish poisoned-resolver answers from injected ones.
    authority: str = ""

    @property
    def ok(self) -> bool:
        return self.rcode == "NOERROR" and bool(self.ips)


@dataclass
class DNSLookupResult:
    """Client-side outcome of one lookup (possibly after retries)."""

    qname: str
    resolver_ip: str
    ips: List[str] = field(default_factory=list)
    rcode: Optional[str] = None
    responded: bool = False
    responder_ip: Optional[str] = None
    rtt: float = 0.0
    #: Total queries sent, including the first (so 1 == no retries).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.responded and self.rcode == "NOERROR" and bool(self.ips)

    @property
    def outcome(self) -> str:
        """Coarse taxonomy: ``ok`` / rcode (e.g. ``NXDOMAIN``) / ``timeout``."""
        if not self.responded:
            return "timeout"
        if self.ok:
            return "ok"
        return self.rcode or "empty"
