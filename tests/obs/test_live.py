"""LiveFeed: thread-safe fan-out, bounded queues, replay."""

import threading

from repro.obs.live import LiveFeed


class TestLiveFeed:
    def test_publish_reaches_every_subscriber(self):
        feed = LiveFeed()
        a = feed.subscribe()
        b = feed.subscribe()
        feed.publish({"kind": "x"})
        assert a.pop(0)["kind"] == "x"
        assert b.pop(0)["kind"] == "x"

    def test_sequence_stamping(self):
        feed = LiveFeed()
        sub = feed.subscribe()
        feed.publish({"kind": "a"})
        feed.publish({"kind": "b"})
        assert [sub.pop(0)["seq"], sub.pop(0)["seq"]] == [0, 1]

    def test_slow_subscriber_drops_oldest_only(self):
        feed = LiveFeed()
        sub = feed.subscribe(depth=3)
        for i in range(5):
            feed.publish({"kind": "e", "i": i})
        assert sub.dropped == 2
        assert [e["i"] for e in sub.drain()] == [2, 3, 4]
        # the producer and the other subscribers never noticed
        assert feed.published == 5

    def test_replay_for_late_joiners(self):
        feed = LiveFeed(replay=2)
        for i in range(4):
            feed.publish({"kind": "e", "i": i})
        late = feed.subscribe()
        assert [e["i"] for e in late.drain()] == [2, 3]
        no_replay = feed.subscribe(replay=False)
        assert no_replay.drain() == []

    def test_close_wakes_blocked_pop(self):
        feed = LiveFeed()
        sub = feed.subscribe()
        result = {}

        def blocked():
            result["event"] = sub.pop(timeout=5)

        thread = threading.Thread(target=blocked)
        thread.start()
        feed.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert result["event"] is None

    def test_publish_after_close_is_noop(self):
        feed = LiveFeed()
        sub = feed.subscribe()
        feed.close()
        feed.publish({"kind": "late"})
        assert feed.published == 0
        assert sub.drain() == []

    def test_on_ready_wakeup_fires_outside_lock(self):
        feed = LiveFeed()
        sub = feed.subscribe()
        fired = []
        # a wakeup that itself touches the feed would deadlock if the
        # lock were still held
        sub.on_ready = lambda: fired.append(feed.subscribers)
        feed.publish({"kind": "x"})
        assert fired == [1]

    def test_concurrent_publishers(self):
        feed = LiveFeed()
        sub = feed.subscribe(depth=4096)

        def spam(tag):
            for i in range(100):
                feed.publish({"kind": tag, "i": i})

        threads = [threading.Thread(target=spam, args=(str(t),))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = sub.drain()
        assert len(events) == 400
        assert sorted(e["seq"] for e in events) == list(range(400))
