"""repro.dnssim — DNS substrate: zones, recursive resolvers, lookups.

Implements honest and poisoned recursive resolution (the MTNL/BSNL
censorship mechanism) plus CDN-style region-dependent authoritative
data (the confounder behind OONI's DNS false positives).
"""

from .client import (
    DEFAULT_DNS_TIMEOUT,
    dns_lookup,
    first_working_resolver,
    resolve_all,
)
from .message import (
    DNS_PORT,
    DNSLookupResult,
    DNSQuery,
    DNSResponse,
    QidAllocator,
    next_qid,
    reset_qids,
)
from .resolver import (
    PoisonStrategy,
    ResolverConfig,
    ResolverService,
    bogon_poison,
    mixed_poison,
    static_ip_poison,
)
from .zones import DEFAULT_REGION, GlobalDNS, REGIONS, ZoneRecord

__all__ = [
    "DEFAULT_DNS_TIMEOUT",
    "DEFAULT_REGION",
    "DNSLookupResult",
    "DNSQuery",
    "DNSResponse",
    "DNS_PORT",
    "GlobalDNS",
    "PoisonStrategy",
    "QidAllocator",
    "REGIONS",
    "ResolverConfig",
    "ResolverService",
    "ZoneRecord",
    "bogon_poison",
    "dns_lookup",
    "first_working_resolver",
    "mixed_poison",
    "next_qid",
    "reset_qids",
    "resolve_all",
    "static_ip_poison",
]
