"""repro.runner — crash-safe campaign orchestration.

The layer above individual experiments: decompose every experiment
into named measurement units, journal each unit durably, resume from
the journal after a crash, and guard runaway units with cooperative
deadlines.  See ``docs/CAMPAIGNS.md`` for the full model.

Public surface::

    from repro.runner import Campaign, Journal, Watchdog

:class:`Campaign` is imported lazily (module ``__getattr__``) so that
``repro.experiments.common`` can import the error taxonomy from this
package without a circular import.
"""

from .errors import (
    DEGRADABLE,
    FATAL,
    POISON,
    QUARANTINED,
    TRANSIENT,
    CampaignDeadline,
    CampaignError,
    JournalError,
    ResumeMismatch,
    SimulatedCrash,
    TimeoutDegradation,
    TransientUnitError,
    UnitTimeout,
    classify_error,
)
from .journal import Journal
from .units import TableSpec, Unit, campaign_payload
from .watchdog import Watchdog

__all__ = [
    "Campaign",
    "CampaignDeadline",
    "CampaignError",
    "CampaignReport",
    "DEGRADABLE",
    "FATAL",
    "Journal",
    "JournalError",
    "POISON",
    "QUARANTINED",
    "ResumeMismatch",
    "SimulatedCrash",
    "Supervisor",
    "TRANSIENT",
    "TableSpec",
    "TimeoutDegradation",
    "TransientUnitError",
    "Unit",
    "UnitTimeout",
    "Watchdog",
    "campaign_payload",
    "classify_error",
]

_LAZY = ("Campaign", "CampaignReport")


def __getattr__(name):
    if name in _LAZY:
        from . import campaign as _campaign

        return getattr(_campaign, name)
    if name == "Supervisor":
        from .supervise import Supervisor

        return Supervisor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
