"""Crash-safe campaign orchestration.

A :class:`Campaign` decomposes experiments into named measurement
units (each module's ``units()`` iterator), streams every unit's
result to an append-only hash-chained journal (``journal.jsonl`` in
the run directory), and renders the final tables **from the journal**
— never from in-memory state.  Consequences:

* killing the process at any point loses at most the unit in flight;
* ``resume=True`` re-runs only missing, failed, or timed-out units;
* straight and killed-and-resumed runs with the same seed produce
  byte-identical ``tables.txt`` (every payload takes the same
  JSON round trip either way, and every unit runs on a fresh world
  built from the campaign seed, never on state left over from
  earlier units).

With ``workers > 1`` independent units execute concurrently in a
process pool (each worker builds its own world from the campaign
seed); results stream back and are committed to the journal in
**canonical unit order**, so the journal — and the tables rendered
from it — are byte-identical to a serial run.  Journal records carry
only deterministic fields; per-unit wall-clock timings live in the run
directory's ``timings.jsonl`` sidecar.  See ``docs/PERFORMANCE.md``
for the determinism argument.

A cooperative :class:`~repro.runner.watchdog.Watchdog` bounds runaway
units: per-unit simulated-event budgets (deterministic) and per-unit /
per-campaign wall-clock guards (for real hangs) convert a stuck unit
into a recorded :class:`~repro.runner.errors.TimeoutDegradation` entry
and move on.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .errors import (
    CampaignDeadline,
    CampaignError,
    ResumeMismatch,
    SimulatedCrash,
    TimeoutDegradation,
)
from .journal import Journal
from .parallel import (
    FatalUnitError,
    UnitSettings,
    build_unit_world,
    execute_unit,
    run_unit_task,
    worker_initializer,
)
from .units import Unit
from .watchdog import Watchdog

#: Journal schema version (bump on incompatible record changes).
JOURNAL_VERSION = 1

#: Fault-injection knob: "crash" after durably journaling N units.
CRASH_AFTER_ENV = "REPRO_CAMPAIGN_CRASH_AFTER"

#: Unit statuses whose journal entries survive a resume untouched.
_DURABLE_STATUSES = ("ok", "degraded")


def _registry(experiments: Optional[Sequence[str]]):
    """Resolve experiment keys to modules (lazy import: no cycles)."""
    from ..experiments import EXPERIMENT_MODULES

    if experiments is None:
        return dict(EXPERIMENT_MODULES)
    registry = {}
    for key in experiments:
        if key not in EXPERIMENT_MODULES:
            raise CampaignError(
                f"unknown experiment {key!r} (choose from "
                f"{', '.join(sorted(EXPERIMENT_MODULES))})")
        registry[key] = EXPERIMENT_MODULES[key]
    return registry


@dataclasses.dataclass
class CampaignReport:
    """What a campaign run produced, plus where the durable state is."""

    run_dir: str
    journal_path: str
    tables_path: str
    tables: str
    counts: Dict[str, int]
    degradation: object  # experiments.common.Degradation
    discarded_journal_lines: int = 0
    deadline_hit: Optional[str] = None

    @property
    def complete(self) -> bool:
        """Every unit has a durable (ok or degraded) entry."""
        return (self.counts["ok"] + self.counts["degraded"]
                == self.counts["total"])

    def render(self) -> str:
        counts = self.counts
        lines = [
            f"campaign run: {self.run_dir}",
            f"journal: {self.journal_path}",
            f"units: {counts['total']} total — {counts['ok']} ok, "
            f"{counts['degraded']} degraded, {counts['timeout']} timeout, "
            f"{counts['failed']} failed, {counts['missing']} not run",
        ]
        if self.discarded_journal_lines:
            lines.append(f"journal: discarded "
                         f"{self.discarded_journal_lines} corrupt tail "
                         f"line(s) on resume")
        if self.deadline_hit:
            lines.append(f"deadline: {self.deadline_hit}")
        extra = self.degradation.describe()
        if extra:
            lines.append(extra)
        return "\n".join(lines) + "\n\n" + self.tables


class Campaign:
    """One resumable, deadline-guarded sweep over experiment units."""

    def __init__(self, experiments: Optional[Sequence[str]] = None,
                 seed: int = 1808, scale: float = 0.25,
                 run_dir: str = "campaign-run", resume: bool = False,
                 fraction: Optional[float] = None,
                 unit_steps: Optional[int] = None,
                 unit_wall: Optional[float] = None,
                 deadline: Optional[float] = None,
                 loss: float = 0.0, fault_seed: int = 0,
                 retries: Optional[int] = None,
                 crash_after: Optional[int] = None,
                 specs: Optional[Mapping[str, object]] = None,
                 echo_journal: bool = False,
                 workers: int = 1,
                 trace: bool = False,
                 clock: Callable[[], float] = time.monotonic) -> None:
        from ..experiments.common import bench_fraction

        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        if workers > 1 and specs is not None:
            raise CampaignError(
                "workers > 1 requires registry experiments (worker "
                "processes re-resolve units by name; ad-hoc spec "
                "modules cannot cross the process boundary)")
        self.workers = workers
        self.registry = (dict(specs) if specs is not None
                         else _registry(experiments))
        #: On resume with no explicit experiment list, adopt the
        #: journal's recorded list rather than demanding a retype.
        self._adopt_experiments = specs is None and experiments is None
        self.seed = seed
        self.scale = scale
        self.fraction = bench_fraction() if fraction is None else fraction
        self.run_dir = run_dir
        self.resume = resume
        self.unit_steps = unit_steps
        self.loss = loss
        self.fault_seed = fault_seed
        self.retries = retries
        if crash_after is None:
            raw = os.environ.get(CRASH_AFTER_ENV)
            crash_after = int(raw) if raw else None
        self.crash_after = crash_after
        self.echo_journal = echo_journal
        self.trace = trace
        self.watchdog = Watchdog(unit_steps=unit_steps, unit_wall=unit_wall,
                                 campaign_wall=deadline, clock=clock)

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.run_dir, "journal.jsonl")

    @property
    def tables_path(self) -> str:
        return os.path.join(self.run_dir, "tables.txt")

    def _meta(self) -> Dict:
        return {
            "type": "meta",
            "version": JOURNAL_VERSION,
            "seed": self.seed,
            "scale": self.scale,
            "fraction": self.fraction,
            "experiments": list(self.registry),
            "loss": self.loss,
            "fault_seed": self.fault_seed,
            "retries": self.retries,
            "unit_steps": self.unit_steps,
        }

    def _open_journal(self) -> Tuple[Journal, List[Dict], int]:
        if self.resume:
            journal, records, discarded = Journal.resume(self.journal_path)
            if not records or records[0].get("type") != "meta":
                raise ResumeMismatch(
                    f"{self.journal_path} has no readable meta record")
            if self._adopt_experiments:
                self.registry = _registry(
                    records[0].get("experiments") or None)
            self._check_meta(records[0])
            return journal, records, discarded
        if os.path.exists(self.journal_path):
            raise CampaignError(
                f"{self.journal_path} already exists — pass resume "
                f"(--resume {self.run_dir}) to continue it, or choose a "
                f"fresh run directory")
        journal = Journal.create(self.journal_path)
        self._append(journal, self._meta())
        return journal, [], 0

    def _check_meta(self, recorded: Dict) -> None:
        expected = self._meta()
        mismatched = [
            key for key in ("version", "seed", "scale", "fraction",
                            "experiments", "loss", "fault_seed", "retries",
                            "unit_steps")
            if recorded.get(key) != expected[key]
        ]
        if mismatched:
            detail = ", ".join(
                f"{key}: journal={recorded.get(key)!r} "
                f"requested={expected[key]!r}" for key in mismatched)
            raise ResumeMismatch(
                f"cannot resume {self.journal_path}: {detail}")

    def _append(self, journal: Journal, record: Dict) -> Dict:
        record = journal.append(record)
        if self.echo_journal:
            from .journal import canonical_json

            print(canonical_json(record))
        return record

    # ------------------------------------------------------------------
    # Unit execution
    # ------------------------------------------------------------------

    def _settings(self) -> UnitSettings:
        """The picklable execution settings shared with workers."""
        return UnitSettings(
            seed=self.seed, scale=self.scale, fraction=self.fraction,
            loss=self.loss, fault_seed=self.fault_seed,
            retries=self.retries, unit_steps=self.unit_steps,
            unit_wall=self.watchdog.unit_wall,
            trace=self.trace,
        )

    def _fresh_world(self):
        """A pristine world per unit: resume-order independence."""
        return build_unit_world(self._settings())

    def _journal_failed_fatal(self, record: Dict) -> None:
        """Best-effort durable note of a fatal crash (then re-raise)."""
        try:
            self._append(self._journal, record)
        except Exception:  # pragma: no cover - diagnostics only
            pass

    def _commit(self, journal: Journal, experiment: str, unit: Unit,
                record: Dict, wall: float,
                extras: Optional[Dict] = None) -> None:
        """Durably journal one unit record; observability in sidecars.

        The journal record is untouched by observability — metrics
        merge into the in-memory registries (flushed to
        ``metrics.json`` at the end) and trace lines append to
        ``trace.jsonl``.  Because this runs in canonical commit order
        for every worker count, both sidecars byte-compare between
        serial and ``--workers N`` runs (wall timings excepted — they
        live in ``timings.jsonl`` and the metrics "wall" section).
        """
        from ..obs.metrics import WALL_BUCKETS

        self._append(journal, record)
        try:
            with open(os.path.join(self.run_dir, "timings.jsonl"),
                      "a", encoding="utf-8") as fh:
                fh.write(json.dumps({
                    "experiment": experiment, "unit": unit.name,
                    "status": record.get("status"),
                    "wall": round(wall, 3),
                }) + "\n")
        except OSError:  # pragma: no cover - diagnostics only
            pass
        self._metrics_wall.histogram(
            "campaign_unit_wall_seconds", WALL_BUCKETS,
            experiment=experiment).observe(wall)
        self._wall_total += wall
        self._steps_total += record.get("steps") or 0
        if extras is None:
            return
        snapshot = extras.get("metrics")
        if snapshot is not None:
            self._metrics_det.merge(snapshot)
        lines = extras.get("trace")
        if lines:
            try:
                with open(os.path.join(self.run_dir, "trace.jsonl"),
                          "a", encoding="utf-8") as fh:
                    fh.write("\n".join(lines) + "\n")
            except OSError:  # pragma: no cover - diagnostics only
                pass

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------

    def run(self) -> CampaignReport:
        from ..obs.metrics import MetricsRegistry

        os.makedirs(self.run_dir, exist_ok=True)
        journal, prior, discarded = self._open_journal()
        self._journal = journal
        self._metrics_det = MetricsRegistry()
        self._metrics_wall = MetricsRegistry()
        self._wall_total = 0.0
        self._steps_total = 0
        units_by_exp: Dict[str, List[Unit]] = {
            key: list(module.units())
            for key, module in self.registry.items()
        }
        durable = {
            (rec["experiment"], rec["unit"])
            for rec in prior
            if rec.get("type") == "unit"
            and rec.get("status") in _DURABLE_STATUSES
        }
        resumed = 0
        #: Canonical execution/commit order: registry order, then each
        #: experiment's own unit order — identical for every worker
        #: count, which is what makes the journals byte-compare.
        pending: List[Tuple[str, Unit]] = []
        for key, units in units_by_exp.items():
            for unit in units:
                if (key, unit.name) in durable:
                    resumed += 1
                else:
                    pending.append((key, unit))
        self.watchdog.start_campaign()
        if self.workers > 1:
            deadline_hit = self._run_parallel(journal, pending)
        else:
            deadline_hit = self._run_serial(journal, pending)
        report = self._finish(units_by_exp, resumed, discarded,
                              deadline_hit)
        self._append(journal, {
            "type": "end",
            "status": "deadline" if deadline_hit
            else ("complete" if report.complete else "partial"),
        })
        return report

    def _check_deadline(self, deadline_hit: Optional[str]
                        ) -> Optional[str]:
        """Between units/commits: has the campaign budget expired?"""
        if deadline_hit is None:
            try:
                self.watchdog.check_campaign()
            except CampaignDeadline as exc:
                return str(exc)
        return deadline_hit

    def _crash_if_injected(self, executed: int) -> None:
        if self.crash_after is not None and executed >= self.crash_after:
            raise SimulatedCrash(
                f"injected crash after {executed} journaled "
                f"unit(s) — resume with --resume {self.run_dir}")

    def _run_serial(self, journal: Journal,
                    pending: List[Tuple[str, Unit]]) -> Optional[str]:
        """Seed behaviour: one unit at a time, in canonical order."""
        settings = self._settings()
        executed = 0
        deadline_hit: Optional[str] = None
        for key, unit in pending:
            deadline_hit = self._check_deadline(deadline_hit)
            if deadline_hit is not None:
                continue
            try:
                record, wall, extras = execute_unit(settings, key, unit,
                                                    self.watchdog)
            except FatalUnitError as exc:
                self._journal_failed_fatal(exc.record)
                raise exc.original
            self._commit(journal, key, unit, record, wall, extras)
            executed += 1
            self._crash_if_injected(executed)
        return deadline_hit

    def _run_parallel(self, journal: Journal,
                      pending: List[Tuple[str, Unit]]) -> Optional[str]:
        """Fan units out to a process pool; commit in canonical order.

        Submission is free-running (workers pick up units as slots
        open) but the commit loop walks *pending* in order and blocks
        on each unit's own future, so the journal is written exactly
        as a serial run writes it.  A hit deadline stops committing —
        uncommitted results are discarded, leaving those units missing
        and resumable, just as the serial loop leaves them un-run.
        """
        from concurrent.futures import ProcessPoolExecutor

        executed = 0
        deadline_hit: Optional[str] = None
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=worker_initializer,
            initargs=(self._settings(),))
        try:
            futures = [(key, unit,
                        pool.submit(run_unit_task, key, unit.name))
                       for key, unit in pending]
            for key, unit, future in futures:
                deadline_hit = self._check_deadline(deadline_hit)
                if deadline_hit is not None:
                    break
                record, wall, extras, fatal = future.result()
                if fatal:
                    self._journal_failed_fatal(record)
                    raise CampaignError(
                        f"fatal error in unit {key}:{record['unit']}: "
                        f"{record['error']['reason']}")
                self._commit(journal, key, unit, record, wall, extras)
                executed += 1
                self._crash_if_injected(executed)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return deadline_hit

    # ------------------------------------------------------------------
    # Assembly (always from the journal — the durable source of truth)
    # ------------------------------------------------------------------

    def _finish(self, units_by_exp, resumed: int, discarded: int,
                deadline_hit: Optional[str]) -> CampaignReport:
        from ..experiments.common import Degradation

        records, _ = Journal.load(self.journal_path)
        latest: Dict[Tuple[str, str], Dict] = {}
        for rec in records:
            if rec.get("type") == "unit":
                latest[(rec["experiment"], rec["unit"])] = rec

        counts = {"total": 0, "ok": 0, "degraded": 0, "timeout": 0,
                  "failed": 0, "missing": 0}
        degradation = Degradation(resumed=resumed)
        for key, units in units_by_exp.items():
            for unit in units:
                counts["total"] += 1
                rec = latest.get((key, unit.name))
                if rec is None:
                    counts["missing"] += 1
                    continue
                counts[rec["status"]] += 1
                if rec["status"] == "timeout":
                    degradation.record_timeout(TimeoutDegradation(
                        unit=f"{key}:{unit.name}",
                        kind=rec["timeout"]["kind"],
                        detail=rec["timeout"]["detail"]))
                elif rec["status"] == "failed":
                    degradation.record_error(f"{key}:{unit.name}",
                                             rec["error"]["reason"])
                else:
                    payload = rec["payload"]
                    degradation.retries += payload.get("retries", 0)
                    for unit_name, reason in payload.get("errors", ()):
                        degradation.record_error(unit_name, reason)

        tables = self._assemble(units_by_exp, latest)
        with open(self.tables_path, "w", encoding="utf-8") as fh:
            fh.write(tables)
        self._write_metrics(counts)
        return CampaignReport(
            run_dir=self.run_dir,
            journal_path=self.journal_path,
            tables_path=self.tables_path,
            tables=tables,
            counts=counts,
            degradation=degradation,
            discarded_journal_lines=discarded,
            deadline_hit=deadline_hit,
        )

    def _write_metrics(self, counts: Dict[str, int]) -> None:
        """Flush the run's metrics to the ``metrics.json`` sidecar.

        Split into a ``deterministic`` section (identical between
        serial and ``--workers N`` runs of the same campaign) and a
        ``wall`` section (timing-derived, varies run to run).  Covers
        the units executed *by this invocation* — a resumed campaign's
        metrics describe the resumed units only.
        """
        for status, count in sorted(counts.items()):
            if status != "total" and count:
                self._metrics_det.counter(
                    "campaign_units_total", status=status).inc(count)
        if self._wall_total > 0:
            self._metrics_wall.gauge("campaign_wall_seconds").set(
                round(self._wall_total, 3))
            self._metrics_wall.gauge("campaign_events_per_second").set(
                round(self._steps_total / self._wall_total, 1))
        try:
            with open(os.path.join(self.run_dir, "metrics.json"),
                      "w", encoding="utf-8") as fh:
                json.dump({
                    "deterministic": self._metrics_det.snapshot(),
                    "wall": self._metrics_wall.snapshot(),
                }, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError:  # pragma: no cover - diagnostics only
            pass

    def _assemble(self, units_by_exp, latest) -> str:
        from ..experiments.common import format_table

        sections: List[str] = []
        for key, module in self.registry.items():
            spec = module.CAMPAIGN
            headers = list(spec.headers)
            rows: List[List] = []
            notes: List[str] = []
            for unit in units_by_exp[key]:
                rec = latest.get((key, unit.name))
                if rec is None:
                    rows.append(self._pad([unit.name, "(not run)"],
                                          headers))
                elif rec["status"] == "timeout":
                    rows.append(self._pad(
                        [unit.name,
                         f"(timeout: {rec['timeout']['detail']})"],
                        headers))
                elif rec["status"] == "failed":
                    rows.append(self._pad(
                        [unit.name,
                         f"(failed: {rec['error']['reason']})"],
                        headers))
                else:
                    rows.extend(rec["payload"]["rows"])
                    notes.extend(rec["payload"].get("notes", ()))
            section = format_table(headers, rows, title=spec.title)
            if spec.footer:
                section += "\n" + spec.footer
            for note in notes:
                section += "\n" + note
            sections.append(section)
        return "\n\n".join(sections) + "\n"

    @staticmethod
    def _pad(row: List, headers: List[str]) -> List:
        return row + ["-"] * (len(headers) - len(row))
