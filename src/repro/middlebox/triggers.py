"""What makes a censorship middlebox fire.

Section 3.4 establishes experimentally that the Indian middleboxes are
triggered *solely* by the domain in the ``Host`` field of an HTTP GET
request — not by responses, not by the domain at other offsets, and
only on TCP port 80.  Section 5 then defeats them by exploiting how
*literally* each box matches that field.  :class:`TriggerSpec` captures
the per-box matching discipline:

* ``exact_keyword_case`` — the box greps for the exact bytes ``Host``;
  sending ``HOst`` evades it (the wiretap boxes of Airtel and Jio).
* ``strict_value_whitespace`` — the box expects exactly ``"Host: dom"``;
  extra spaces or tabs around the domain evade it (Idea's overt
  interceptive box).
* ``inspect_last_host_only`` — the box keys on the *last* ``Host:``
  occurrence in the payload; appending a fake uncensored Host line
  evades it (Vodafone's covert interceptive box).
* ``match_www_alias`` — whether ``www.blocked.com`` also triggers;
  boxes matching exactly are evaded by prepending ``www.``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple


@dataclass(frozen=True)
class TriggerSpec:
    """Matching discipline of one middlebox deployment."""

    blocklist: FrozenSet[str]
    exact_keyword_case: bool = True
    strict_value_whitespace: bool = True
    inspect_last_host_only: bool = False
    match_www_alias: bool = False
    ports: Tuple[int, ...] = (80,)

    def inspects_port(self, dst_port: int) -> bool:
        return dst_port in self.ports

    def extract_host_values(self, payload: bytes) -> List[str]:
        """All Host-field values this box's parser would see, in order.

        The scan is a raw byte-level grep over CRLF-separated lines —
        middleboxes do not implement HTTP framing, which is exactly why
        bytes after a ``\\r\\n\\r\\n`` still count (covert evasion) and
        why whitespace/case deviations escape strict boxes.
        """
        values: List[str] = []
        for raw_line in payload.split(b"\r\n"):
            value = self._match_line(raw_line)
            if value is not None:
                values.append(value)
        return values

    def _match_line(self, raw_line: bytes) -> Optional[str]:
        try:
            line = raw_line.decode("latin-1")
        except Exception:  # pragma: no cover - latin-1 never fails
            return None
        keyword, colon, rest = line.partition(":")
        if not colon:
            return None
        if self.exact_keyword_case:
            if keyword != "Host":
                return None
        else:
            if keyword.lower() != "host":
                return None
        if self.strict_value_whitespace:
            # The box expects the browser-canonical "Host: domain" —
            # exactly one space, no trailing whitespace.
            if not rest.startswith(" "):
                return None
            value = rest[1:]
            if value != value.strip() or not value:
                return None
            if " " in value or "\t" in value:
                return None
            return value
        value = rest.strip(" \t")
        return value or None

    def matched_domain(self, payload: bytes) -> Optional[str]:
        """The blocked domain this payload triggers on, if any."""
        values = self.extract_host_values(payload)
        if not values:
            return None
        if self.inspect_last_host_only:
            values = values[-1:]
        for value in values:
            domain = value.lower()
            if domain in self.blocklist:
                return domain
            if self.match_www_alias and domain.startswith("www."):
                bare = domain[4:]
                if bare in self.blocklist:
                    return bare
        return None

    def triggers_on(self, payload: bytes) -> bool:
        return self.matched_domain(payload) is not None


def browser_canonical_line(domain: str) -> bytes:
    """The Host line every stock browser sends — what all boxes match."""
    return f"Host: {domain}".encode("latin-1")


@dataclass
class TriggerStats:
    """Counters a middlebox keeps about its own activity."""

    inspected: int = 0
    not_established: int = 0
    out_of_scope: int = 0
    triggered: int = 0
    missed_race: int = 0
    dropped_post_censor: int = 0
    #: Packets the fault layer made the box skip entirely.
    fault_blind: int = 0
    #: Session-table pressure: flows evicted to admit new ones.
    evicted: int = 0
    #: New flows left untracked (uninspected) at a full table.
    overload_fail_open: int = 0
    #: New flows refused (reset) at a full table.
    overload_fail_closed: int = 0
    #: Fresh flows blocked by a lingering residual-censorship entry.
    residual_hits: int = 0
    #: Flows whose reassembly buffer overflowed ``max_buffer``.
    truncated_flows: int = 0
    by_domain: dict = field(default_factory=dict)

    def record_trigger(self, domain: str) -> None:
        self.triggered += 1
        self.by_domain[domain] = self.by_domain.get(domain, 0) + 1
