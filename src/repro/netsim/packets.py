"""Packet model: IPv4 headers with TCP, UDP and ICMP payloads.

Packets are small mutable dataclasses.  Routers mutate the TTL in place
on a per-hop copy; endpoints and middleboxes treat received packets as
immutable.  ``clone()`` produces deep-enough copies for wiretaps.

:class:`PacketPool` recycles TCP packets on the simulator's hottest
path.  Pooling is safe because payload bytes are immutable (anything
that keeps ``segment.payload`` keeps the bytes object, which survives
the packet's recycling); only retaining the :class:`Packet` or
:class:`TCPSegment` *object* across a release is hazardous, and the
engine only releases packets nothing retains (see the release-site
comments in ``engine.py``).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Union

DEFAULT_TTL = 64

_ip_id_counter = itertools.count(1)


def next_ip_id() -> int:
    """Return a fresh IP identification value (16-bit wrap)."""
    return next(_ip_id_counter) & 0xFFFF


class TCPFlags(enum.IntFlag):
    """TCP header flag bits."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


class IcmpType(enum.IntEnum):
    """The ICMP types the simulator generates."""

    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


@dataclass(slots=True)
class TCPSegment:
    """A TCP segment: ports, sequence space, flags and payload bytes."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: TCPFlags = TCPFlags(0)
    payload: bytes = b""
    window: int = 65535

    def has(self, flag: TCPFlags) -> bool:
        """Return True if *flag* is set on this segment."""
        # Raw int test: IntFlag.__and__ + __bool__ dominate the TCP
        # hot path otherwise.  Falls back for plain-int flags.
        try:
            return (self.flags._value_ & flag._value_) != 0
        except AttributeError:
            return bool(self.flags & flag)

    @property
    def seg_len(self) -> int:
        """Sequence-space length: payload bytes plus SYN/FIN."""
        length = len(self.payload)
        try:
            bits = self.flags._value_
        except AttributeError:
            bits = int(self.flags)
        if bits & 0x02:  # SYN
            length += 1
        if bits & 0x01:  # FIN
            length += 1
        return length

    def describe(self) -> str:
        """Short human-readable rendering, e.g. ``SYN|ACK seq=1 ack=1``."""
        names = [f.name for f in TCPFlags if self.flags & f and f.name]
        flag_text = "|".join(names) if names else "-"
        return (
            f"{flag_text} seq={self.seq} ack={self.ack} "
            f"len={len(self.payload)}"
        )


@dataclass(slots=True)
class UDPDatagram:
    """A UDP datagram carrying opaque application payload."""

    src_port: int
    dst_port: int
    payload: object = b""


@dataclass
class IcmpMessage:
    """An ICMP message.

    For TIME_EXCEEDED / DEST_UNREACHABLE, ``original`` holds the packet
    that triggered the error, mimicking the quoted header bytes a real
    ICMP error carries (enough for traceroute to match probes).
    """

    icmp_type: IcmpType
    code: int = 0
    original: Optional["Packet"] = None
    ident: int = 0
    seq: int = 0


Payload = Union[TCPSegment, UDPDatagram, IcmpMessage]


@dataclass
class Packet:
    """An IPv4 packet: addressing, TTL, identification and payload."""

    src: str
    dst: str
    payload: Payload
    ttl: int = DEFAULT_TTL
    ip_id: int = field(default_factory=next_ip_id)

    @property
    def is_tcp(self) -> bool:
        return isinstance(self.payload, TCPSegment)

    @property
    def is_udp(self) -> bool:
        return isinstance(self.payload, UDPDatagram)

    @property
    def is_icmp(self) -> bool:
        return isinstance(self.payload, IcmpMessage)

    @property
    def tcp(self) -> TCPSegment:
        """The TCP payload; raises TypeError for non-TCP packets."""
        if not isinstance(self.payload, TCPSegment):
            raise TypeError(f"not a TCP packet: {self!r}")
        return self.payload

    @property
    def udp(self) -> UDPDatagram:
        """The UDP payload; raises TypeError for non-UDP packets."""
        if not isinstance(self.payload, UDPDatagram):
            raise TypeError(f"not a UDP packet: {self!r}")
        return self.payload

    @property
    def icmp(self) -> IcmpMessage:
        """The ICMP payload; raises TypeError for non-ICMP packets."""
        if not isinstance(self.payload, IcmpMessage):
            raise TypeError(f"not an ICMP packet: {self!r}")
        return self.payload

    def flow_key(self) -> tuple:
        """The 5-tuple identifying this packet's flow (TCP/UDP only)."""
        if self.is_tcp:
            seg = self.tcp
            return ("tcp", self.src, seg.src_port, self.dst, seg.dst_port)
        if self.is_udp:
            dgram = self.udp
            return ("udp", self.src, dgram.src_port, self.dst, dgram.dst_port)
        return ("icmp", self.src, 0, self.dst, 0)

    def clone(self) -> "Packet":
        """Copy the packet (payload dataclass copied, bytes shared)."""
        # Type-dispatched positional construction: dataclasses.replace
        # costs ~10% of a packet-level fetch; exact-type checks keep
        # payload subclasses on the general path.
        p = self.payload
        tp = type(p)
        if tp is TCPSegment:
            copied: Payload = TCPSegment(p.src_port, p.dst_port, p.seq,
                                         p.ack, p.flags, p.payload, p.window)
        elif tp is UDPDatagram:
            copied = UDPDatagram(p.src_port, p.dst_port, p.payload)
        else:
            copied = replace(p)
        return Packet(
            src=self.src,
            dst=self.dst,
            payload=copied,
            ttl=self.ttl,
            ip_id=self.ip_id,
        )

    def describe(self) -> str:
        """One-line rendering used in captures and debug output."""
        if self.is_tcp:
            seg = self.tcp
            detail = f"TCP {seg.src_port}->{seg.dst_port} {seg.describe()}"
        elif self.is_udp:
            dgram = self.udp
            detail = f"UDP {dgram.src_port}->{dgram.dst_port}"
        else:
            msg = self.icmp
            detail = f"ICMP type={msg.icmp_type.name}"
        return f"{self.src} > {self.dst} ttl={self.ttl} id={self.ip_id} {detail}"


def make_tcp_packet(
    src: str,
    dst: str,
    src_port: int,
    dst_port: int,
    *,
    seq: int = 0,
    ack: int = 0,
    flags: TCPFlags = TCPFlags(0),
    payload: bytes = b"",
    ttl: int = DEFAULT_TTL,
    ip_id: Optional[int] = None,
) -> Packet:
    """Convenience constructor for a TCP packet."""
    segment = TCPSegment(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        payload=payload,
    )
    packet = Packet(src=src, dst=dst, payload=segment, ttl=ttl)
    if ip_id is not None:
        packet.ip_id = ip_id
    return packet


def make_udp_packet(
    src: str,
    dst: str,
    src_port: int,
    dst_port: int,
    payload: object,
    *,
    ttl: int = DEFAULT_TTL,
) -> Packet:
    """Convenience constructor for a UDP packet."""
    datagram = UDPDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
    return Packet(src=src, dst=dst, payload=datagram, ttl=ttl)


def make_time_exceeded(router_ip: str, offending: Packet) -> Packet:
    """Build the ICMP Time-Exceeded reply a router sends when TTL hits 0."""
    message = IcmpMessage(
        icmp_type=IcmpType.TIME_EXCEEDED,
        code=0,
        original=offending.clone(),
    )
    return Packet(src=router_ip, dst=offending.src, payload=message)


def make_dest_unreachable(router_ip: str, offending: Packet, code: int = 1) -> Packet:
    """Build an ICMP Destination-Unreachable reply (default: host unreachable)."""
    message = IcmpMessage(
        icmp_type=IcmpType.DEST_UNREACHABLE,
        code=code,
        original=offending.clone(),
    )
    return Packet(src=router_ip, dst=offending.src, payload=message)


#: Free-list size cap — beyond this, released packets are simply
#: dropped for the GC (a topology burst should not pin memory forever).
POOL_FREE_MAX = 4096


class PacketPool:
    """Free-list recycling of TCP packets.

    Only TCP packets are pooled (they dominate every fetch and probe);
    ICMP and UDP stay on the plain constructors.  The contract:

    * :meth:`acquire_tcp` behaves exactly like :func:`make_tcp_packet`
      — including drawing a fresh IP id *before* honoring an explicit
      ``ip_id`` override, so the global id sequence (and therefore every
      trace) is identical whether pooling is on or off.
    * :meth:`release` is a no-op for packets the pool did not create,
      and a counted no-op for double releases, so release sites never
      need to know a packet's provenance.
    * On release the payload reference is scrubbed; every header field
      is reset on the next acquire.
    """

    __slots__ = ("_free", "acquired", "reused", "released",
                 "double_release", "high_water")

    def __init__(self) -> None:
        self._free: List[Packet] = []
        self.acquired = 0
        self.reused = 0
        self.released = 0
        self.double_release = 0
        self.high_water = 0

    def acquire_tcp(
        self,
        src: str,
        dst: str,
        src_port: int,
        dst_port: int,
        *,
        seq: int = 0,
        ack: int = 0,
        flags: TCPFlags = TCPFlags(0),
        payload: bytes = b"",
        ttl: int = DEFAULT_TTL,
        ip_id: Optional[int] = None,
    ) -> Packet:
        """A TCP packet, recycled when the free list has one."""
        self.acquired += 1
        free = self._free
        if not free:
            packet = make_tcp_packet(
                src, dst, src_port, dst_port, seq=seq, ack=ack,
                flags=flags, payload=payload, ttl=ttl, ip_id=ip_id,
            )
            packet._pooled = True  # type: ignore[attr-defined]
            packet._in_pool = False  # type: ignore[attr-defined]
            return packet
        self.reused += 1
        packet = free.pop()
        packet._in_pool = False  # type: ignore[attr-defined]
        packet.src = src
        packet.dst = dst
        packet.ttl = ttl
        # make_tcp_packet always draws an id (default_factory) and only
        # then applies an override — reproduce that draw order exactly.
        packet.ip_id = next_ip_id()
        if ip_id is not None:
            packet.ip_id = ip_id
        segment = packet.payload
        segment.src_port = src_port
        segment.dst_port = dst_port
        segment.seq = seq
        segment.ack = ack
        segment.flags = flags
        segment.payload = payload
        segment.window = 65535
        return packet

    def release(self, packet: Packet) -> None:
        """Return *packet* to the free list if the pool created it."""
        state = packet.__dict__
        if not state.get("_pooled"):
            return
        if state.get("_in_pool"):
            self.double_release += 1
            return
        self.released += 1
        packet._in_pool = True  # type: ignore[attr-defined]
        packet.payload.payload = b""  # drop the bytes reference early
        free = self._free
        if len(free) < POOL_FREE_MAX:
            free.append(packet)
            if len(free) > self.high_water:
                self.high_water = len(free)

    def snapshot(self) -> dict:
        """Counter snapshot for ``repro.obs.metrics``."""
        return {
            "acquired": self.acquired,
            "reused": self.reused,
            "released": self.released,
            "double_release": self.double_release,
            "free": len(self._free),
            "high_water": self.high_water,
        }
