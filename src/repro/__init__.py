"""repro — reproduction of "Where The Light Gets In: Analyzing Web
Censorship Mechanisms in India" (IMC 2018) on a deterministic
packet-level network simulator.

Quickstart::

    from repro.isps import build_world
    from repro.core.vantage import VantagePoint

    world = build_world(scale=0.2)           # a small India-in-a-box
    client = VantagePoint.inside(world, "airtel")
    result = client.fetch_domain(sorted(world.blocklists.http["airtel"])[0])

Package map:

* :mod:`repro.netsim` — packet-level IPv4/TCP/UDP/ICMP simulator
* :mod:`repro.httpsim` — HTTP crafting/serving/fetching/diffing
* :mod:`repro.dnssim` — zones, recursive resolvers, lookups
* :mod:`repro.middlebox` — wiretap/interceptive boxes, DNS poisoning
* :mod:`repro.websites` — the PBW corpus and hosting substrate
* :mod:`repro.isps` — the nine ISPs + TATA, and world assembly
* :mod:`repro.core` — the paper's contribution: measurement + evasion
* :mod:`repro.experiments` — regeneration of every table and figure
"""

__version__ = "1.0.0"

from . import core, dnssim, httpsim, isps, middlebox, netsim, websites

__all__ = [
    "__version__",
    "core",
    "dnssim",
    "httpsim",
    "isps",
    "middlebox",
    "netsim",
    "websites",
]
