"""The paper's seven PBW categories, with word pools for synthesis.

Section 3: the 1,200-site corpus spans "escort services, pornography,
music, torrent sites, politics, tools and social networks".  Synthetic
domains and page text are generated from per-category word pools so
that corpora are deterministic, human-readable and category-plausible.
"""

from __future__ import annotations

from typing import Dict, Sequence

#: Category name -> (relative corpus weight, domain word pool).
CATEGORIES: Dict[str, tuple] = {
    "escort": (0.08, (
        "escort", "companion", "elite", "velvet", "night", "angel",
        "city", "date", "club", "vip",
    )),
    "porn": (0.34, (
        "adult", "xxx", "tube", "cam", "hot", "spice", "desire",
        "flame", "peach", "vixen",
    )),
    "music": (0.10, (
        "music", "song", "beat", "track", "remix", "dj", "tunes",
        "melody", "bass", "vibe",
    )),
    "torrent": (0.16, (
        "torrent", "seed", "leech", "magnet", "tracker", "pirate",
        "bay", "dump", "mirror", "rls",
    )),
    "politics": (0.14, (
        "truth", "voice", "nation", "dissent", "report", "watch",
        "press", "rights", "front", "leak",
    )),
    "tools": (0.10, (
        "proxy", "vpn", "unblock", "tunnel", "anon", "hide", "free",
        "bypass", "gate", "relay",
    )),
    "social": (0.08, (
        "social", "chat", "friend", "connect", "forum", "board",
        "circle", "meet", "share", "buzz",
    )),
}

#: Top-level domains used when synthesising names.
TLDS: Sequence[str] = (".com", ".net", ".org", ".info", ".xyz", ".to", ".in")

#: Generic filler vocabulary for page bodies.
FILLER_WORDS: Sequence[str] = (
    "stream", "online", "content", "latest", "update", "archive",
    "exclusive", "premium", "gallery", "download", "community",
    "trending", "featured", "daily", "weekly", "collection", "browse",
    "discover", "popular", "original", "verified", "unlimited",
)


def category_names() -> Sequence[str]:
    return tuple(CATEGORIES.keys())


def category_weight(category: str) -> float:
    return CATEGORIES[category][0]


def category_words(category: str) -> Sequence[str]:
    return CATEGORIES[category][1]
