"""SSE framing and stream scoping."""

from repro.serve.sse import format_event, keepalive, matches


class TestFraming:
    def test_frame_shape(self):
        frame = format_event({"kind": "unit-committed", "seq": 7,
                              "unit": "mtnl"}).decode()
        lines = frame.splitlines()
        assert lines[0] == "id: 7"
        assert lines[1] == "event: unit-committed"
        assert lines[2].startswith("data: {")
        assert frame.endswith("\n\n")

    def test_data_is_compact_sorted_json(self):
        frame = format_event({"kind": "x", "b": 1, "a": 2}).decode()
        assert 'data: {"a":2,"b":1,"kind":"x"}' in frame

    def test_seqless_event_has_no_id(self):
        assert b"id:" not in format_event({"kind": "x"})

    def test_keepalive_is_a_comment(self):
        assert keepalive().startswith(b":")


class TestScoping:
    def test_tenant_scope(self):
        event = {"kind": "unit-committed", "tenant": "a", "run_id": "c1"}
        assert matches(event, tenant="a")
        assert not matches(event, tenant="b")

    def test_run_scope(self):
        event = {"kind": "unit-committed", "tenant": "a", "run_id": "c1"}
        assert matches(event, tenant="a", run_id="c1")
        assert not matches(event, tenant="a", run_id="c2")

    def test_service_events_reach_every_stream(self):
        drain = {"kind": "service-drain", "reason": "SIGTERM"}
        assert matches(drain, tenant="a", run_id="c1")
        assert matches(drain)
