"""Spool durability and the boot-time recovery state machine."""

import json
import os

from repro.runner.journal import Journal
from repro.serve.recovery import Spool


def _spool(tmp_path):
    spool = Spool(str(tmp_path / "spool"))
    spool.ensure(["alice", "bob"])
    return spool


def _read_status(job):
    with open(job.status_path, encoding="utf-8") as fh:
        return json.load(fh)


def _fake_journal(job, *, ended=None, units=2):
    """A real hash-chained journal, optionally with an end record."""
    os.makedirs(job.run_dir, exist_ok=True)
    journal = Journal.create(job.journal_path)
    journal.append({"type": "meta", "seed": 1})
    for i in range(units):
        journal.append({"type": "unit", "experiment": "tcpip",
                        "unit": f"u{i}", "status": "ok"})
    if ended is not None:
        journal.append({"type": "end", "status": ended})


class TestSpoolBasics:
    def test_accept_is_durable_before_ack(self, tmp_path):
        spool = _spool(tmp_path)
        job = spool.accept("alice", {"experiments": ["tcpip"],
                                     "workers": 1})
        assert os.path.exists(os.path.join(job.job_dir,
                                           "submission.json"))
        assert _read_status(job)["state"] == "queued"

    def test_run_ids_monotonic_and_restart_safe(self, tmp_path):
        spool = _spool(tmp_path)
        first = spool.accept("alice", {})
        second = spool.accept("alice", {})
        assert (first.run_id, second.run_id) == ("c000001", "c000002")
        # a fresh Spool over the same root continues the counter
        reborn = Spool(spool.root)
        assert reborn.next_run_id("alice") == "c000003"
        assert reborn.next_run_id("bob") == "c000001"

    def test_writable_probe(self, tmp_path):
        spool = _spool(tmp_path)
        assert spool.writable()
        assert not Spool(str(tmp_path / "missing")).writable()


class TestRecovery:
    def test_final_states_left_alone(self, tmp_path):
        spool = _spool(tmp_path)
        done = spool.accept("alice", {})
        spool.set_state(done, "complete")
        failed = spool.accept("alice", {})
        spool.set_state(failed, "failed")
        jobs, finalized = spool.recover(["alice", "bob"])
        assert jobs == [] and finalized == []

    def test_queued_without_journal_reruns_fresh(self, tmp_path):
        spool = _spool(tmp_path)
        spool.accept("alice", {"workers": 2})
        jobs, _ = spool.recover(["alice", "bob"])
        assert len(jobs) == 1
        assert not jobs[0].resume
        assert jobs[0].slots == 2
        assert _read_status(jobs[0])["recovered"] is True

    def test_interrupted_with_open_journal_resumes(self, tmp_path):
        spool = _spool(tmp_path)
        job = spool.accept("bob", {})
        spool.set_state(job, "running")
        _fake_journal(job, ended=None)
        jobs, _ = spool.recover(["alice", "bob"])
        assert [j.run_id for j in jobs] == [job.run_id]
        assert jobs[0].resume, "open journal must be resumed, not redone"

    def test_ended_journal_finalizes_without_rerun(self, tmp_path):
        """Crash between the journal's end record and the status
        write: recovery trusts the journal and does not re-run."""
        spool = _spool(tmp_path)
        job = spool.accept("alice", {})
        spool.set_state(job, "running")
        _fake_journal(job, ended="complete")
        jobs, finalized = spool.recover(["alice", "bob"])
        assert jobs == []
        assert finalized == [{"tenant": "alice", "run_id": job.run_id,
                              "state": "complete"}]
        assert _read_status(job)["state"] == "complete"

    def test_torn_submission_marked_failed(self, tmp_path):
        spool = _spool(tmp_path)
        job_dir = os.path.join(spool.root, "alice", "c000001")
        os.makedirs(job_dir)  # crash before submission.json landed
        jobs, _ = spool.recover(["alice", "bob"])
        assert jobs == []
        status = spool.read_state(job_dir)
        assert status["state"] == "failed"

    def test_unconfigured_tenant_dirs_ignored(self, tmp_path):
        spool = _spool(tmp_path)
        spool.accept("alice", {})
        jobs, _ = spool.recover(["bob"])  # alice not configured now
        assert jobs == []
